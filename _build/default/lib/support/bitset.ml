type t = { mutable words : Bytes.t }

(* One byte per 8 members; Bytes gives cheap blits and growth. *)

let create n =
  let nbytes = max 1 ((max 0 n + 7) / 8) in
  { words = Bytes.make nbytes '\000' }

let capacity t = Bytes.length t.words * 8

let ensure t i =
  if i >= capacity t then begin
    let nbytes = max (Bytes.length t.words * 2) ((i / 8) + 1) in
    let words = Bytes.make nbytes '\000' in
    Bytes.blit t.words 0 words 0 (Bytes.length t.words);
    t.words <- words
  end

let mem t i =
  if i < 0 || i >= capacity t then false
  else Char.code (Bytes.get t.words (i / 8)) land (1 lsl (i land 7)) <> 0

let add t i =
  if i < 0 then invalid_arg "Bitset.add: negative index";
  ensure t i;
  let b = i / 8 in
  Bytes.set t.words b (Char.chr (Char.code (Bytes.get t.words b) lor (1 lsl (i land 7))))

let remove t i =
  if i >= 0 && i < capacity t then begin
    let b = i / 8 in
    Bytes.set t.words b
      (Char.chr (Char.code (Bytes.get t.words b) land lnot (1 lsl (i land 7)) land 0xff))
  end

let union_into ~into src =
  ensure into (capacity src - 1);
  for b = 0 to Bytes.length src.words - 1 do
    let c = Char.code (Bytes.get src.words b) in
    if c <> 0 then
      Bytes.set into.words b (Char.chr (Char.code (Bytes.get into.words b) lor c))
  done

let popcount_byte =
  let tbl = Array.init 256 (fun c ->
      let rec count c = if c = 0 then 0 else (c land 1) + count (c lsr 1) in
      count c)
  in
  fun c -> tbl.(c)

let cardinal t =
  let n = ref 0 in
  for b = 0 to Bytes.length t.words - 1 do
    n := !n + popcount_byte (Char.code (Bytes.get t.words b))
  done;
  !n

let iter f t =
  for b = 0 to Bytes.length t.words - 1 do
    let c = Char.code (Bytes.get t.words b) in
    if c <> 0 then
      for bit = 0 to 7 do
        if c land (1 lsl bit) <> 0 then f ((b * 8) + bit)
      done
  done

let copy t = { words = Bytes.copy t.words }

let clear t = Bytes.fill t.words 0 (Bytes.length t.words) '\000'
