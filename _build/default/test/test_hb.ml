(* Unit and property tests for the happens-before graph. *)

open Wr_hb

let mk ?(strategy = Graph.Closure) () = Graph.create ~strategy ()

let op g label = Graph.fresh g Op.Script ~label

let test_empty_graph () =
  let g = mk () in
  let a = op g "a" and b = op g "b" in
  Alcotest.(check bool) "no hb" false (Graph.happens_before g a b);
  Alcotest.(check bool) "chc" true (Graph.chc g a b);
  Alcotest.(check bool) "chc self" false (Graph.chc g a a)

let test_direct_edge () =
  let g = mk () in
  let a = op g "a" and b = op g "b" in
  Graph.add_edge g a b;
  Alcotest.(check bool) "a -> b" true (Graph.happens_before g a b);
  Alcotest.(check bool) "not b -> a" false (Graph.happens_before g b a);
  Alcotest.(check bool) "not concurrent" false (Graph.chc g a b)

let test_transitivity () =
  let g = mk () in
  let a = op g "a" and b = op g "b" and c = op g "c" and d = op g "d" in
  Graph.add_edge g a b;
  Graph.add_edge g b c;
  Graph.add_edge g c d;
  Alcotest.(check bool) "a -> d" true (Graph.happens_before g a d);
  Alcotest.(check bool) "a -> c" true (Graph.happens_before g a c);
  Alcotest.(check bool) "not d -> a" false (Graph.happens_before g d a)

let test_diamond () =
  let g = mk () in
  let a = op g "a" and b = op g "b" and c = op g "c" and d = op g "d" in
  Graph.add_edge g a b;
  Graph.add_edge g a c;
  Graph.add_edge g b d;
  Graph.add_edge g c d;
  Alcotest.(check bool) "a -> d" true (Graph.happens_before g a d);
  Alcotest.(check bool) "b, c concurrent" true (Graph.chc g b c)

let test_late_edge_propagation () =
  (* An edge added after the target already has successors must propagate
     through the closure. *)
  let g = mk () in
  let a = op g "a" and b = op g "b" and c = op g "c" in
  Graph.add_edge g b c;
  Graph.add_edge g a b;
  Alcotest.(check bool) "a -> c via late edge" true (Graph.happens_before g a c)

let test_self_and_backward_edges_rejected () =
  let g = mk () in
  let a = op g "a" and b = op g "b" in
  Graph.add_edge g a b;
  (match Graph.add_edge g a a with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "self edge accepted");
  match Graph.add_edge g b a with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "backward edge accepted"

let test_duplicate_edges_ignored () =
  let g = mk () in
  let a = op g "a" and b = op g "b" in
  Graph.add_edge g a b;
  Graph.add_edge g a b;
  Alcotest.(check int) "one edge" 1 (Graph.n_edges g)

let test_info () =
  let g = mk () in
  let a = Graph.fresh g Op.Parse ~label:"div#x" in
  let info = Graph.info g a in
  Alcotest.(check string) "label" "div#x" info.Op.label;
  Alcotest.(check string) "kind" "parse" (Op.kind_name info.Op.kind);
  match Graph.info g 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown id accepted"

(* Random DAG generator for property tests: edges only i -> j with i < j. *)
let random_dag_gen =
  QCheck.Gen.(
    int_range 2 40 >>= fun n ->
    let all_pairs =
      List.concat (List.init n (fun i -> List.init (n - i - 1) (fun k -> (i, i + k + 1))))
    in
    let m = List.length all_pairs in
    list_size (int_bound (min m (3 * n))) (int_bound (max 0 (m - 1))) >>= fun picks ->
    return (n, List.map (List.nth all_pairs) picks))

let build strategy (n, edges) =
  let g = Graph.create ~strategy () in
  for i = 0 to n - 1 do
    ignore (Graph.fresh g Op.Script ~label:(string_of_int i))
  done;
  List.iter (fun (a, b) -> Graph.add_edge g a b) edges;
  g

let prop_strategies_agree =
  QCheck.Test.make ~name:"dfs, closure and chain-vc strategies agree" ~count:100
    (QCheck.make random_dag_gen) (fun (n, edges) ->
      let dfs = build Graph.Dfs (n, edges) in
      let closure = build Graph.Closure (n, edges) in
      let chain_vc = build Graph.Chain_vc (n, edges) in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let reference = Graph.happens_before dfs a b in
          if Graph.happens_before closure a b <> reference then ok := false;
          if Graph.happens_before chain_vc a b <> reference then ok := false;
          if Graph.chc closure a b <> Graph.chc dfs a b then ok := false;
          if Graph.chc chain_vc a b <> Graph.chc dfs a b then ok := false
        done
      done;
      !ok)

let prop_chc_symmetric =
  QCheck.Test.make ~name:"chc is symmetric and irreflexive" ~count:100
    (QCheck.make random_dag_gen) (fun (n, edges) ->
      let g = build Graph.Closure (n, edges) in
      let ok = ref true in
      for a = 0 to n - 1 do
        if Graph.chc g a a then ok := false;
        for b = 0 to n - 1 do
          if Graph.chc g a b <> Graph.chc g b a then ok := false
        done
      done;
      !ok)

let prop_hb_transitive =
  QCheck.Test.make ~name:"happens-before is transitive" ~count:60
    (QCheck.make random_dag_gen) (fun (n, edges) ->
      let g = build Graph.Closure (n, edges) in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Graph.happens_before g a b then
            for c = 0 to n - 1 do
              if Graph.happens_before g b c && not (Graph.happens_before g a c) then ok := false
            done
        done
      done;
      !ok)

let test_chain_vc_chain_count () =
  (* A pure chain stays one chain; a fan-out of k leaves needs k chains. *)
  let g = Graph.create ~strategy:Graph.Chain_vc () in
  let a = op g "a" in
  let b = op g "b" in
  let c = op g "c" in
  Graph.add_edge g a b;
  Graph.add_edge g b c;
  Alcotest.(check bool) "a -> c" true (Graph.happens_before g a c);
  Alcotest.(check int) "one chain for a path" 1 (Graph.n_chains g);
  let g2 = Graph.create ~strategy:Graph.Chain_vc () in
  let root = op g2 "root" in
  let leaves = List.init 4 (fun i -> op g2 (Printf.sprintf "leaf%d" i)) in
  List.iter (fun l -> Graph.add_edge g2 root l) leaves;
  List.iter
    (fun l -> Alcotest.(check bool) "root -> leaf" true (Graph.happens_before g2 root l))
    leaves;
  Alcotest.(check bool) "leaves concurrent" true
    (Graph.chc g2 (List.nth leaves 0) (List.nth leaves 3))

let suite =
  [
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
    Alcotest.test_case "chain-vc chains" `Quick test_chain_vc_chain_count;
    Alcotest.test_case "direct edge" `Quick test_direct_edge;
    Alcotest.test_case "transitivity" `Quick test_transitivity;
    Alcotest.test_case "diamond" `Quick test_diamond;
    Alcotest.test_case "late edge propagation" `Quick test_late_edge_propagation;
    Alcotest.test_case "bad edges rejected" `Quick test_self_and_backward_edges_rejected;
    Alcotest.test_case "duplicate edges" `Quick test_duplicate_edges_ignored;
    Alcotest.test_case "op info" `Quick test_info;
    QCheck_alcotest.to_alcotest prop_strategies_agree;
    QCheck_alcotest.to_alcotest prop_chc_symmetric;
    QCheck_alcotest.to_alcotest prop_hb_transitive;
  ]

let test_to_dot () =
  let g = mk () in
  let a = op g "alpha" and b = op g "beta" in
  Graph.add_edge g a b;
  let dot = Graph.to_dot ~highlight:[ b ] g in
  let has needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (has "digraph happens_before");
  Alcotest.(check bool) "node labels" true (has "alpha" && has "beta");
  Alcotest.(check bool) "edge" true (has (Printf.sprintf "n%d -> n%d;" a b));
  Alcotest.(check bool) "highlight" true (has "color=red");
  (* Labels with quotes must be escaped. *)
  let g2 = mk () in
  ignore (Graph.fresh g2 Op.Parse ~label:{|parse <div id="x">|});
  Alcotest.(check bool) "escaped quotes" true
    (let d = Graph.to_dot g2 in
     let rec go i =
       i + 2 <= String.length d && (String.sub d i 2 = {|\"|} || go (i + 1))
     in
     go 0)

let suite = suite @ [ Alcotest.test_case "to_dot rendering" `Quick test_to_dot ]
