(* Tests for the top-level API: reports, JSON rendering, and the
   adversarial-replay extension. *)

let fig4_page =
  {|<iframe id="i" src="sub.html" onload="doNextStep();"></iframe>
<div>a</div><div>b</div><div>c</div><div>d</div><div>e</div>
<script>function doNextStep() { return 1; }</script>|}

let fig4_resources = [ ("sub.html", "<p>sub</p>") ]

let test_replay_manifests_fig4 () =
  (* Under some schedule with slow parsing, the iframe's load beats the
     script's parse and the hidden ReferenceError becomes observable. *)
  let cfg = Webracer.config ~page:fig4_page ~resources:fig4_resources ~explore:false () in
  let verdict =
    Webracer.Replay.explore_schedules cfg ~seeds:(List.init 30 (fun i -> i)) ~parse_delay:2. ()
  in
  Alcotest.(check bool) "race manifests" true (Webracer.Replay.manifests verdict);
  Alcotest.(check bool) "at least one crashing seed" true
    (verdict.Webracer.Replay.crashing_seeds <> []);
  let crashing = List.hd verdict.Webracer.Replay.crashing_seeds in
  let o =
    List.find
      (fun (o : Webracer.Replay.observation) -> o.Webracer.Replay.seed = crashing)
      verdict.Webracer.Replay.observations
  in
  Alcotest.(check bool) "the crash is the ReferenceError" true
    (List.exists
       (fun m ->
         let has_sub needle hay =
           let n = String.length needle and h = String.length hay in
           let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
           go 0
         in
         has_sub "doNextStep" m)
       o.Webracer.Replay.crashes)

let test_replay_race_free_page_stable () =
  let cfg =
    Webracer.config ~page:{|<script>var x = 1; x = x + 1;</script><div>ok</div>|}
      ~explore:false ()
  in
  let verdict =
    Webracer.Replay.explore_schedules cfg ~seeds:(List.init 10 (fun i -> i)) ()
  in
  Alcotest.(check bool) "no divergence" false (Webracer.Replay.manifests verdict);
  Alcotest.(check int) "no crashes" 0 (List.length verdict.Webracer.Replay.crashing_seeds)

let test_report_json_shape () =
  let report =
    Webracer.analyze
      (Webracer.config ~page:{|<script>missing();</script>|} ~seed:1 ~explore:false ())
  in
  match Webracer.report_to_json report with
  | Wr_support.Json.Obj fields ->
      List.iter
        (fun key ->
          Alcotest.(check bool) ("has " ^ key) true (List.mem_assoc key fields))
        [ "races"; "filtered"; "crashes"; "console"; "ops"; "accesses" ];
      (* The JSON must be serializable and non-empty. *)
      Alcotest.(check bool) "serializes" true
        (String.length (Wr_support.Json.to_string (Wr_support.Json.Obj fields)) > 10)
  | _ -> Alcotest.fail "expected an object"

let test_count_by_type () =
  let report =
    Webracer.analyze
      (Webracer.config
         ~page:
           {|<script>function go() { var v = document.getElementById("late"); v.className = "y"; }</script>
<a href="javascript:go()">x</a>
<div id="late">z</div>|}
         ~seed:2 ~explore:true ())
  in
  let h, f, v, d = Webracer.count_by_type report.Webracer.races in
  Alcotest.(check int) "html" 1 h;
  (* go() is declared before the link parses, so no function race. *)
  Alcotest.(check int) "function" 0 f;
  Alcotest.(check int) "variable" 0 v;
  Alcotest.(check int) "dispatch" 0 d

let test_explored_events_counted () =
  let report =
    Webracer.analyze
      (Webracer.config
         ~page:{|<input type="text" id="t"><div onmouseover="1;" id="m">x</div>|}
         ~seed:1 ~explore:true ())
  in
  (* One typing action + the mouseover dispatched twice. *)
  Alcotest.(check int) "explored events" 3 report.Webracer.explored_events

let test_parse_delay_slows_virtual_time () =
  let run parse_delay =
    (Webracer.analyze
       (Webracer.config ~page:{|<div>a</div><div>b</div><div>c</div>|} ~explore:false
          ~parse_delay ()))
      .Webracer.virtual_ms
  in
  Alcotest.(check bool) "parsing consumes virtual time" true (run 5. > run 0.)

let suite =
  [
    Alcotest.test_case "replay: fig4 crash manifests" `Quick test_replay_manifests_fig4;
    Alcotest.test_case "replay: race-free page stable" `Quick test_replay_race_free_page_stable;
    Alcotest.test_case "report json shape" `Quick test_report_json_shape;
    Alcotest.test_case "count_by_type" `Quick test_count_by_type;
    Alcotest.test_case "explored events counted" `Quick test_explored_events_counted;
    Alcotest.test_case "parse_delay virtual time" `Quick test_parse_delay_slows_virtual_time;
  ]

let test_analyze_many_stable_site () =
  (* A deterministic racy page: the same race set under every seed. *)
  let cfg =
    Webracer.config
      ~page:{|<input type="text" id="q" /><script>document.getElementById("q").value = "hint";</script>|}
      ~explore:true ()
  in
  let m = Webracer.analyze_many cfg ~seeds:[ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "stable across seeds" true m.Webracer.stable;
  Alcotest.(check int) "one merged race" 1 (List.length m.Webracer.merged);
  Alcotest.(check (list int)) "same count each run" [ 1; 1; 1; 1 ] m.Webracer.per_run_counts

let test_analyze_many_merges () =
  let cfg = Webracer.config ~page:{|<div>quiet</div>|} () in
  let m = Webracer.analyze_many cfg ~seeds:[ 7 ] in
  Alcotest.(check int) "no races anywhere" 0 (List.length m.Webracer.merged);
  Alcotest.(check bool) "trivially stable" true m.Webracer.stable

let more_suite =
  [
    Alcotest.test_case "analyze_many: stability" `Quick test_analyze_many_stable_site;
    Alcotest.test_case "analyze_many: quiet page" `Quick test_analyze_many_merges;
  ]

let suite = suite @ more_suite
