(* Unit tests for the race detectors and filters. *)

open Wr_hb
open Wr_mem
open Wr_detect

let var ?(name = "x") cell = Location.Js_var { cell; name }

let setup ?(strategy = Graph.Closure) () =
  let g = Graph.create ~strategy () in
  let d = Last_access.create g in
  (g, d)

let access ?(flags = []) loc kind op = Access.make ~flags ~context:"test" loc kind op

let test_no_race_when_ordered () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  Graph.add_edge g a b;
  d.Detector.record (access (var 1) `Write a);
  d.Detector.record (access (var 1) `Read b);
  Alcotest.(check int) "no race" 0 (List.length (d.Detector.races ()))

let test_write_read_race () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  d.Detector.record (access (var 1) `Write a);
  d.Detector.record (access (var 1) `Read b);
  match d.Detector.races () with
  | [ r ] ->
      Alcotest.(check string) "type" "variable" (Race.type_name r.Race.race_type);
      Alcotest.(check int) "first op" a r.Race.first.Access.op;
      Alcotest.(check int) "second op" b r.Race.second.Access.op
  | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs)

let test_read_write_race () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  d.Detector.record (access (var 1) `Read a);
  d.Detector.record (access (var 1) `Write b);
  Alcotest.(check int) "one race" 1 (List.length (d.Detector.races ()))

let test_write_write_race () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  d.Detector.record (access (var 1) `Write a);
  d.Detector.record (access (var 1) `Write b);
  Alcotest.(check int) "one race" 1 (List.length (d.Detector.races ()))

let test_read_read_no_race () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  d.Detector.record (access (var 1) `Read a);
  d.Detector.record (access (var 1) `Read b);
  Alcotest.(check int) "no race" 0 (List.length (d.Detector.races ()))

let test_same_op_no_race () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" in
  d.Detector.record (access (var 1) `Write a);
  d.Detector.record (access (var 1) `Write a);
  d.Detector.record (access (var 1) `Read a);
  Alcotest.(check int) "no race" 0 (List.length (d.Detector.races ()))

let test_distinct_locations_independent () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  d.Detector.record (access (var 1) `Write a);
  d.Detector.record (access (var 2) `Write b);
  Alcotest.(check int) "no race" 0 (List.length (d.Detector.races ()))

let test_one_report_per_location () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" in
  let b = Graph.fresh g Op.Script ~label:"b" in
  let c = Graph.fresh g Op.Script ~label:"c" in
  d.Detector.record (access (var 1) `Write a);
  d.Detector.record (access (var 1) `Write b);
  d.Detector.record (access (var 1) `Write c);
  Alcotest.(check int) "deduplicated" 1 (List.length (d.Detector.races ()))

let test_paper_limitation_example () =
  (* §5.1: ops 1,2,3 all touch e; 1 -> 2; schedule 3 · 1 · 2.
     The single-slot detector misses the 2-3 race; full-track finds it. *)
  let run detector_of =
    let g = Graph.create () in
    let o1 = Graph.fresh g Op.Script ~label:"1" in
    let o2 = Graph.fresh g Op.Script ~label:"2" in
    let o3 = Graph.fresh g Op.Script ~label:"3" in
    Graph.add_edge g o1 o2;
    let d : Detector.t = detector_of g in
    d.Detector.record (access (var 1) `Read o3);
    d.Detector.record (access (var 1) `Read o1);
    d.Detector.record (access (var 1) `Write o2);
    List.length (d.Detector.races ())
  in
  Alcotest.(check int) "single-slot misses" 0 (run Last_access.create);
  Alcotest.(check int) "full-track catches" 1 (run Full_track.create)

let test_container_write_write_suppressed () =
  let g, d = setup () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  let container = Location.Event_handler { target = 5; event = "load"; slot = Container } in
  d.Detector.record (access container `Write a);
  d.Detector.record (access container `Write b);
  Alcotest.(check int) "disjoint registrations do not race" 0
    (List.length (d.Detector.races ()));
  (* But dispatch (read) racing with registration (write) is reported. *)
  let c = Graph.fresh g Op.Script ~label:"c" in
  d.Detector.record (access container `Read c);
  Alcotest.(check int) "read vs write still races" 1 (List.length (d.Detector.races ()))

let test_checked_read_first_flag () =
  (* An operation that reads a location before writing it gets its write
     annotated, which the form filter later uses (§5.3 refinement). *)
  let g, d = setup () in
  let b = Graph.fresh g Op.Script ~label:"b" in
  d.Detector.record (access (var 1) `Read b);
  d.Detector.record (access ~flags:[ Access.Form_field ] (var 1) `Write b);
  let c = Graph.fresh g Op.Script ~label:"c" in
  d.Detector.record (access (var 1) `Read c);
  match d.Detector.races () with
  | [ r ] ->
      Alcotest.(check bool) "write carries Checked_read_first" true
        (Access.has_flag r.Race.first Access.Checked_read_first)
  | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs)

let test_race_classification () =
  let mk_race first_flags loc =
    let g = Graph.create () in
    let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
    let d = Last_access.create g in
    d.Detector.record (access ~flags:first_flags loc `Write a);
    d.Detector.record (access loc `Read b);
    match d.Detector.races () with
    | [ r ] -> r.Race.race_type
    | _ -> Alcotest.fail "expected a race"
  in
  Alcotest.(check string) "variable" "variable"
    (Race.type_name (mk_race [] (var 1)));
  Alcotest.(check string) "function" "function"
    (Race.type_name (mk_race [ Access.Function_decl ] (var 1)));
  Alcotest.(check string) "html" "html"
    (Race.type_name (mk_race [] (Location.Html_elem (Location.Id { doc = 0; id = "dw" }))));
  Alcotest.(check string) "event dispatch" "event-dispatch"
    (Race.type_name
       (mk_race [] (Location.Event_handler { target = 3; event = "load"; slot = Attr })))

let make_race ?(first_flags = []) ?(second_flags = []) ?(loc = var 1) ?(first_kind = `Write)
    ?(second_kind = `Read) () =
  let g = Graph.create () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  let first = access ~flags:first_flags loc first_kind a in
  let second = access ~flags:second_flags loc second_kind b in
  Race.make ~first ~second

let no_dispatch = { Filters.dispatch_count = (fun ~target:_ ~event:_ -> 0) }

let test_form_filter () =
  let plain_var = make_race () in
  let form =
    make_race ~first_flags:[ Access.Form_field ] ~second_flags:[ Access.Form_field ] ()
  in
  let checked =
    make_race
      ~first_flags:[ Access.Form_field; Access.Checked_read_first ]
      ~second_flags:[ Access.Form_field ] ()
  in
  let html = make_race ~loc:(Location.Html_elem (Location.Node 3)) () in
  let kept = Filters.form_field [ plain_var; form; checked; html ] in
  Alcotest.(check int) "keeps form race and html race" 2 (List.length kept)

let test_single_dispatch_filter () =
  let loc1 = Location.Event_handler { target = 1; event = "load"; slot = Location.Attr } in
  let loc2 = Location.Event_handler { target = 2; event = "click"; slot = Location.Attr } in
  let r1 = make_race ~loc:loc1 () and r2 = make_race ~loc:loc2 () in
  let info =
    {
      Filters.dispatch_count =
        (fun ~target ~event ->
          match target, event with
          | 1, "load" -> 1
          | 2, "click" -> 5
          | _ -> 0);
    }
  in
  let kept = Filters.single_dispatch info [ r1; r2 ] in
  Alcotest.(check int) "keeps only single-dispatch" 1 (List.length kept);
  Alcotest.(check int) "both pass with zero dispatches" 2
    (List.length (Filters.single_dispatch no_dispatch [ r1; r2 ]))

let test_harmful_heuristic () =
  let miss = make_race ~second_flags:[ Access.Observed_miss ] () in
  Alcotest.(check bool) "miss is harmful" true (Race.heuristic_harmful miss);
  let input =
    make_race ~first_flags:[ Access.User_input; Access.Form_field ]
      ~second_flags:[ Access.Form_field ] ()
  in
  Alcotest.(check bool) "lost input is harmful" true (Race.heuristic_harmful input);
  let benign = make_race () in
  Alcotest.(check bool) "plain race not flagged" false (Race.heuristic_harmful benign)

let test_full_track_agrees_on_simple_cases () =
  let run create =
    let g = Graph.create () in
    let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
    Graph.add_edge g a b;
    let c = Graph.fresh g Op.Script ~label:"c" in
    let d : Detector.t = create g in
    d.Detector.record (access (var 1) `Write a);
    d.Detector.record (access (var 1) `Read b);
    d.Detector.record (access (var 1) `Write c);
    List.length (d.Detector.races ())
  in
  Alcotest.(check int) "same verdict" (run Last_access.create) (run Full_track.create)

let suite =
  [
    Alcotest.test_case "ordered accesses: no race" `Quick test_no_race_when_ordered;
    Alcotest.test_case "write-read race" `Quick test_write_read_race;
    Alcotest.test_case "read-write race" `Quick test_read_write_race;
    Alcotest.test_case "write-write race" `Quick test_write_write_race;
    Alcotest.test_case "read-read: no race" `Quick test_read_read_no_race;
    Alcotest.test_case "same op: no race" `Quick test_same_op_no_race;
    Alcotest.test_case "distinct locations" `Quick test_distinct_locations_independent;
    Alcotest.test_case "one report per location" `Quick test_one_report_per_location;
    Alcotest.test_case "paper 5.1 limitation" `Quick test_paper_limitation_example;
    Alcotest.test_case "container ww suppressed" `Quick test_container_write_write_suppressed;
    Alcotest.test_case "checked-read-first" `Quick test_checked_read_first_flag;
    Alcotest.test_case "race classification" `Quick test_race_classification;
    Alcotest.test_case "form filter" `Quick test_form_filter;
    Alcotest.test_case "single-dispatch filter" `Quick test_single_dispatch_filter;
    Alcotest.test_case "harmful heuristic" `Quick test_harmful_heuristic;
    Alcotest.test_case "full-track parity" `Quick test_full_track_agrees_on_simple_cases;
  ]
