(* Unit tests for the MiniJS lexer, parser, and interpreter. *)

open Wr_js

let run_and_read src name =
  let vm = Interp.create ~sink:ignore () in
  Interp.run_in_global vm (Parser.parse src);
  match Hashtbl.find_opt vm.Value.global.Value.vars name with
  | Some cell -> !cell
  | None -> Alcotest.failf "global %s not defined after running %s" name src

let check_number src name expected =
  match run_and_read src name with
  | Value.Number n -> Alcotest.(check (float 1e-9)) (src ^ " -> " ^ name) expected n
  | v -> Alcotest.failf "%s: expected number, got %s" src (Value.describe v)

let check_string src name expected =
  match run_and_read src name with
  | Value.String s -> Alcotest.(check string) (src ^ " -> " ^ name) expected s
  | v -> Alcotest.failf "%s: expected string, got %s" src (Value.describe v)

let check_bool src name expected =
  match run_and_read src name with
  | Value.Bool b -> Alcotest.(check bool) (src ^ " -> " ^ name) expected b
  | v -> Alcotest.failf "%s: expected bool, got %s" src (Value.describe v)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let test_lexer_numbers () =
  let toks = Lexer.tokenize "42 3.14 0x10 1e3 .5" in
  let nums =
    Array.to_list toks
    |> List.filter_map (fun { Lexer.tok; _ } ->
           match tok with Lexer.T_number n -> Some n | _ -> None)
  in
  Alcotest.(check (list (float 1e-9))) "numbers" [ 42.; 3.14; 16.; 1000.; 0.5 ] nums

let test_lexer_strings () =
  let toks = Lexer.tokenize {|'a' "b\n" "\x41" 'it\'s'|} in
  let strs =
    Array.to_list toks
    |> List.filter_map (fun { Lexer.tok; _ } ->
           match tok with Lexer.T_string s -> Some s | _ -> None)
  in
  Alcotest.(check (list string)) "strings" [ "a"; "b\n"; "A"; "it's" ] strs

let test_lexer_comments () =
  let toks = Lexer.tokenize "a // line\n b /* block\n more */ c" in
  let idents =
    Array.to_list toks
    |> List.filter_map (fun { Lexer.tok; _ } ->
           match tok with Lexer.T_ident s -> Some s | _ -> None)
  in
  Alcotest.(check (list string)) "idents" [ "a"; "b"; "c" ] idents

let test_lexer_punct_longest_match () =
  let toks = Lexer.tokenize "a >>>= b === c >>> d" in
  let puncts =
    Array.to_list toks
    |> List.filter_map (fun { Lexer.tok; _ } ->
           match tok with Lexer.T_punct s -> Some s | _ -> None)
  in
  Alcotest.(check (list string)) "puncts" [ ">>>="; "==="; ">>>" ] puncts

let test_lexer_errors () =
  Alcotest.check_raises "unterminated string"
    (Lexer.Lex_error ("unterminated string literal", 1, 6))
    (fun () -> ignore (Lexer.tokenize "\"oops"));
  (match Lexer.tokenize "@" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lex error on @")

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parser_precedence () =
  let e = Parser.parse_expression "1 + 2 * 3" in
  (match e with
  | Ast.Binop (Ast.Add, Ast.Number 1., Ast.Binop (Ast.Mul, Ast.Number 2., Ast.Number 3.)) -> ()
  | _ -> Alcotest.failf "wrong tree: %s" (Pretty.expr_to_string e));
  let e = Parser.parse_expression "a || b && c" in
  match e with
  | Ast.Binop (Ast.Or, Ast.Ident "a", Ast.Binop (Ast.And, Ast.Ident "b", Ast.Ident "c")) -> ()
  | _ -> Alcotest.failf "wrong tree: %s" (Pretty.expr_to_string e)

let test_parser_assoc () =
  (* Left associativity of -, right associativity of assignment. *)
  (match Parser.parse_expression "10 - 3 - 2" with
  | Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, _, _), Ast.Number 2.) -> ()
  | e -> Alcotest.failf "wrong tree: %s" (Pretty.expr_to_string e));
  match Parser.parse_expression "a = b = 1" with
  | Ast.Assign (Ast.L_var "a", Ast.Assign (Ast.L_var "b", Ast.Number 1.)) -> ()
  | e -> Alcotest.failf "wrong tree: %s" (Pretty.expr_to_string e)

let test_parser_member_chain () =
  match Parser.parse_expression "a.b[0].c(1)(2)" with
  | Ast.Call (Ast.Call (Ast.Member (Ast.Index (Ast.Member (Ast.Ident "a", "b"), Ast.Number 0.), "c"), [ Ast.Number 1. ]), [ Ast.Number 2. ]) ->
      ()
  | e -> Alcotest.failf "wrong tree: %s" (Pretty.expr_to_string e)

let test_parser_statements () =
  let prog =
    Parser.parse
      "function f(a) { if (a) { return 1; } else { return 2; } }\n\
       var x = f(1), y;\n\
       for (var i = 0; i < 3; i++) { x = x + i; }\n\
       try { throw x; } catch (e) { y = e; } finally { }\n"
  in
  Alcotest.(check int) "statement count" 4 (List.length prog)

let test_parser_asi () =
  (* Newline-terminated statements without semicolons. *)
  let prog = Parser.parse "var a = 1\nvar b = 2\nb = a + b" in
  Alcotest.(check int) "three statements" 3 (List.length prog)

let test_parser_for_in () =
  match Parser.parse "for (var k in obj) { touch(k); }" with
  | [ Ast.For_in ("k", Ast.Ident "obj", _) ] -> ()
  | _ -> Alcotest.fail "for-in did not parse"

let test_parser_new () =
  match Parser.parse_expression "new Foo(1).bar" with
  | Ast.Member (Ast.New (Ast.Ident "Foo", [ Ast.Number 1. ]), "bar") -> ()
  | e -> Alcotest.failf "wrong tree: %s" (Pretty.expr_to_string e)

let test_parse_error_position () =
  match Parser.parse "var = 3;" with
  | exception Parser.Parse_error (_, 1, col) -> Alcotest.(check int) "column" 5 col
  | _ -> Alcotest.fail "expected parse error"

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)
(* ------------------------------------------------------------------ *)

let test_arith () =
  check_number "var r = 1 + 2 * 3 - 4 / 2;" "r" 5.;
  check_number "var r = 10 % 3;" "r" 1.;
  check_string "var r = 'a' + 1;" "r" "a1";
  check_number "var r = '5' * '2';" "r" 10.;
  check_number "var r = (1 << 4) | 3;" "r" 19.

let test_truthiness_and_equality () =
  check_bool "var r = ('' == false);" "r" true;
  check_bool "var r = (null == undefined);" "r" true;
  check_bool "var r = (null === undefined);" "r" false;
  check_bool "var r = (1 == '1');" "r" true;
  check_bool "var r = (1 === '1');" "r" false;
  check_bool "var r = (NaN == NaN);" "r" false

let test_closures () =
  check_number
    "function counter() { var n = 0; return function() { n = n + 1; return n; }; }\n\
     var c = counter(); c(); c(); var r = c();"
    "r" 3.

let test_objects_and_prototypes () =
  check_number
    "function Point(x, y) { this.x = x; this.y = y; }\n\
     Point.prototype.norm1 = function() { return Math.abs(this.x) + Math.abs(this.y); };\n\
     var p = new Point(3, -4); var r = p.norm1();"
    "r" 7.;
  check_bool "function A() {} var a = new A(); var r = (a instanceof A);" "r" true

let test_arrays () =
  check_number "var a = [1, 2, 3]; a.push(4); var r = a.length;" "r" 4.;
  check_string "var a = [1, 2, 3]; var r = a.join('-');" "r" "1-2-3";
  check_number "var a = [5, 6]; var r = a.pop() + a.length;" "r" 7.;
  check_number "var a = []; a[5] = 1; var r = a.length;" "r" 6.;
  check_number "var a = [1,2,3].map(function(x) { return x * 2; }); var r = a[2];" "r" 6.

let test_string_methods () =
  check_number "var r = 'hello'.length;" "r" 5.;
  check_string "var r = 'hello world'.substring(6, 11);" "r" "world";
  check_string "var r = 'a,b,c'.split(',')[1];" "r" "b";
  check_string "var r = 'aXbXc'.replace('X', '-');" "r" "a-bXc";
  check_number "var r = 'abcabc'.indexOf('c', 3);" "r" 5.

let test_control_flow () =
  check_number
    "var r = 0; for (var i = 0; i < 10; i++) { if (i % 2 === 0) { continue; } if (i > 7) { break; } r = r + i; }"
    "r" 16.;
  check_number "var r = 0; var i = 0; while (i < 5) { r += i; i++; }" "r" 10.;
  check_number "var r = 0; var i = 0; do { r++; i++; } while (i < 3);" "r" 3.;
  check_string
    "var r = ''; switch (2) { case 1: r += 'a'; case 2: r += 'b'; case 3: r += 'c'; break; case 4: r += 'd'; }"
    "r" "bc";
  check_string
    "var r = ''; switch (9) { case 1: r += 'a'; break; default: r += 'z'; }" "r" "z"

let test_exceptions () =
  check_string
    "var r; try { throw new TypeError('boom'); } catch (e) { r = e.name + ':' + e.message; }"
    "r" "TypeError:boom";
  check_string "var r = ''; try { r += 'a'; } finally { r += 'f'; }" "r" "af";
  (* The finally clause runs before the call returns, but the outer read of
     r in "r + f()" already happened: JS evaluates left-to-right. *)
  check_string
    "var r = ''; function f() { try { return 'x'; } finally { r = r + 'fin'; } }\n\
     r = r + f();"
    "r" "x";
  check_string
    "var log = ''; function f() { try { return 'x'; } finally { log += 'fin'; } }\n\
     var r = f() + log;"
    "r" "xfin";
  check_string
    "var r; try { undefinedFn(); } catch (e) { r = e.name; }" "r" "ReferenceError";
  check_string "var r; try { var o; o.x = 1; } catch (e) { r = e.name; }" "r" "TypeError"

let test_hoisting () =
  (* Function declarations are usable before their textual position. *)
  check_number "var r = f(); function f() { return 42; }" "r" 42.;
  (* var hoisting: assignment before declaration still targets the local. *)
  check_string "var r = typeof x; var x = 1;" "r" "undefined"

let test_typeof_undeclared () =
  check_string "var r = typeof nothingHere;" "r" "undefined"

let test_for_in () =
  check_string
    "var o = { a: 1, b: 2 }; var keys = []; for (var k in o) { keys.push(k); } var r = keys.join(',');"
    "r" "a,b"

let test_function_call_apply () =
  check_number
    "function add(a, b) { return this.base + a + b; }\n\
     var r = add.call({ base: 100 }, 1, 2) + add.apply({ base: 10 }, [3, 4]);"
    "r" 120.

let test_fuel_exhaustion () =
  let vm = Interp.create ~fuel:10_000 ~sink:ignore () in
  match Interp.run_in_global vm (Parser.parse "while (true) {}") with
  | exception Value.Fuel_exhausted -> ()
  | () -> Alcotest.fail "expected fuel exhaustion"

let test_math_random_seeded () =
  let sample seed =
    let vm = Interp.create ~seed ~sink:ignore () in
    Interp.run_in_global vm (Parser.parse "var r = Math.random();");
    match Hashtbl.find_opt vm.Value.global.Value.vars "r" with
    | Some { contents = Value.Number n } -> n
    | _ -> Alcotest.fail "no r"
  in
  Alcotest.(check (float 0.)) "same seed same stream" (sample 7) (sample 7);
  if sample 7 = sample 8 then Alcotest.fail "different seeds should differ"

let test_date_virtual_clock () =
  let vm = Interp.create ~sink:ignore () in
  vm.Value.now <- (fun () -> 12345.);
  Interp.run_in_global vm (Parser.parse "var r = Date.now() + (new Date()).getTime();");
  match Hashtbl.find_opt vm.Value.global.Value.vars "r" with
  | Some { contents = Value.Number n } -> Alcotest.(check (float 0.)) "virtual time" 24690. n
  | _ -> Alcotest.fail "no r"

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let accesses_of src =
  let log = ref [] in
  let vm = Interp.create ~sink:(fun a -> log := a :: !log) () in
  (try Interp.run_in_global vm (Parser.parse src) with Value.Js_throw _ -> ());
  List.rev !log

let test_instrument_variable_accesses () =
  let acc = accesses_of "var x = 1; var y = x + 1;" in
  let writes =
    List.filter
      (fun (a : Wr_mem.Access.t) ->
        a.kind = `Write
        && match a.loc with Wr_mem.Location.Js_var { name; _ } -> name = "x" | _ -> false)
      acc
  in
  Alcotest.(check int) "one write to x" 1 (List.length writes);
  let reads =
    List.filter
      (fun (a : Wr_mem.Access.t) ->
        a.kind = `Read
        && match a.loc with Wr_mem.Location.Js_var { name; _ } -> name = "x" | _ -> false)
      acc
  in
  Alcotest.(check int) "one read of x" 1 (List.length reads)

let test_instrument_function_decl_flag () =
  let acc = accesses_of "function g() { return 1; }" in
  let decl_writes =
    List.filter (fun a -> Wr_mem.Access.has_flag a Wr_mem.Access.Function_decl) acc
  in
  Alcotest.(check int) "hoisted declaration write" 1 (List.length decl_writes)

let test_instrument_call_miss () =
  let acc = accesses_of "missingFn();" in
  let miss_calls =
    List.filter
      (fun a ->
        Wr_mem.Access.has_flag a Wr_mem.Access.Observed_miss
        && Wr_mem.Access.has_flag a Wr_mem.Access.Call_position)
      acc
  in
  Alcotest.(check int) "call-position miss" 1 (List.length miss_calls)

let test_instrument_property_miss_identity () =
  (* A property read miss and the later write must land on the same cell. *)
  let acc = accesses_of "var o = {}; var v = o.f; o.f = 1;" in
  let cells_f =
    List.filter_map
      (fun (a : Wr_mem.Access.t) ->
        match a.loc with
        | Wr_mem.Location.Js_var { cell; name = "f" } -> Some (cell, a.kind)
        | _ -> None)
      acc
  in
  match cells_f with
  | [ (c1, `Read); (c2, `Write) ] -> Alcotest.(check int) "same cell" c1 c2
  | _ -> Alcotest.failf "unexpected accesses on f (%d)" (List.length cells_f)

let test_closure_shared_cell_identity () =
  (* Two closures over the same local share one logical cell. *)
  let acc =
    accesses_of
      "function mk() { var shared = 0; return [function() { shared = 1; }, function() { return shared; }]; }\n\
       var fs = mk(); fs[0](); fs[1]();"
  in
  let cells =
    List.filter_map
      (fun (a : Wr_mem.Access.t) ->
        match a.loc with
        | Wr_mem.Location.Js_var { cell; name = "shared" } -> Some cell
        | _ -> None)
      acc
  in
  match List.sort_uniq compare cells with
  | [ _ ] -> ()
  | l -> Alcotest.failf "expected one shared cell, got %d" (List.length l)

let suite =
  [
    Alcotest.test_case "lexer: numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer: strings" `Quick test_lexer_strings;
    Alcotest.test_case "lexer: comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer: longest-match puncts" `Quick test_lexer_punct_longest_match;
    Alcotest.test_case "lexer: errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser: precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser: associativity" `Quick test_parser_assoc;
    Alcotest.test_case "parser: member chains" `Quick test_parser_member_chain;
    Alcotest.test_case "parser: statements" `Quick test_parser_statements;
    Alcotest.test_case "parser: semicolon insertion" `Quick test_parser_asi;
    Alcotest.test_case "parser: for-in" `Quick test_parser_for_in;
    Alcotest.test_case "parser: new expressions" `Quick test_parser_new;
    Alcotest.test_case "parser: error positions" `Quick test_parse_error_position;
    Alcotest.test_case "interp: arithmetic" `Quick test_arith;
    Alcotest.test_case "interp: equality" `Quick test_truthiness_and_equality;
    Alcotest.test_case "interp: closures" `Quick test_closures;
    Alcotest.test_case "interp: objects/prototypes" `Quick test_objects_and_prototypes;
    Alcotest.test_case "interp: arrays" `Quick test_arrays;
    Alcotest.test_case "interp: string methods" `Quick test_string_methods;
    Alcotest.test_case "interp: control flow" `Quick test_control_flow;
    Alcotest.test_case "interp: exceptions" `Quick test_exceptions;
    Alcotest.test_case "interp: hoisting" `Quick test_hoisting;
    Alcotest.test_case "interp: typeof undeclared" `Quick test_typeof_undeclared;
    Alcotest.test_case "interp: for-in" `Quick test_for_in;
    Alcotest.test_case "interp: call/apply" `Quick test_function_call_apply;
    Alcotest.test_case "interp: fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "interp: seeded Math.random" `Quick test_math_random_seeded;
    Alcotest.test_case "interp: virtual Date" `Quick test_date_virtual_clock;
    Alcotest.test_case "instr: variable accesses" `Quick test_instrument_variable_accesses;
    Alcotest.test_case "instr: function-decl flag" `Quick test_instrument_function_decl_flag;
    Alcotest.test_case "instr: call miss" `Quick test_instrument_call_miss;
    Alcotest.test_case "instr: property miss identity" `Quick test_instrument_property_miss_identity;
    Alcotest.test_case "instr: closure shared cell" `Quick test_closure_shared_cell_identity;
  ]

(* --- stdlib extensions ------------------------------------------------ *)

let test_json_stringify () =
  check_string
    {|var r = JSON.stringify({ b: [1, 2, "x"], a: true, n: null });|} "r"
    {|{"a":true,"b":[1,2,"x"],"n":null}|};
  check_string {|var r = JSON.stringify("a\"b\n");|} "r" {|"a\"b\n"|};
  check_string {|var r = JSON.stringify(42.5);|} "r" "42.5";
  check_string
    {|var r; try { var o = {}; o.self = o; JSON.stringify(o); } catch (e) { r = e.name; }|}
    "r" "TypeError"

let test_json_parse () =
  check_number {|var r = JSON.parse("[1, 2, 3]")[1];|} "r" 2.;
  check_string {|var r = JSON.parse("{\"k\": \"v\"}").k;|} "r" "v";
  check_bool {|var r = JSON.parse("true");|} "r" true;
  check_number {|var r = JSON.parse("-1.5e2");|} "r" (-150.);
  check_string
    {|var r; try { JSON.parse("{oops}"); } catch (e) { r = e.name; }|} "r" "SyntaxError"

let test_json_roundtrip () =
  check_string
    {|var o = { list: [1, "two", false], nested: { k: 3 } };
var r = JSON.stringify(JSON.parse(JSON.stringify(o)));|}
    "r" {|{"list":[1,"two",false],"nested":{"k":3}}|}

let test_array_sort () =
  check_string {|var r = [3, 1, 10, 2].sort().join(",");|} "r" "1,10,2,3";
  check_string
    {|var r = [3, 1, 10, 2].sort(function (a, b) { return a - b; }).join(",");|} "r"
    "1,2,3,10";
  check_string {|var r = [1, 2, 3].reverse().join(",");|} "r" "3,2,1"

let test_string_from_char_code () =
  check_string {|var r = String.fromCharCode(72, 105);|} "r" "Hi"

let extra_suite =
  [
    Alcotest.test_case "stdlib: JSON.stringify" `Quick test_json_stringify;
    Alcotest.test_case "stdlib: JSON.parse" `Quick test_json_parse;
    Alcotest.test_case "stdlib: JSON roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "stdlib: Array.sort/reverse" `Quick test_array_sort;
    Alcotest.test_case "stdlib: String.fromCharCode" `Quick test_string_from_char_code;
  ]

let suite = suite @ extra_suite

let test_number_to_string_boundaries () =
  let cases =
    [
      (0., "0"); (3., "3"); (-3., "-3"); (3.5, "3.5"); (1e21, "1e+21");
      (0.1, "0.1"); (Float.nan, "NaN"); (Float.infinity, "Infinity");
      (Float.neg_infinity, "-Infinity");
    ]
  in
  List.iter
    (fun (n, expected) ->
      Alcotest.(check string) (Printf.sprintf "%f" n) expected (Pretty.number_to_string n))
    cases

let suite =
  suite @ [ Alcotest.test_case "number rendering" `Quick test_number_to_string_boundaries ]
