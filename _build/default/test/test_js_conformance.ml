(* A conformance battery for MiniJS: the corner cases that separate a
   believable ES5 subset from a toy. Helpers are shared with Test_js. *)

let check_number = Test_js.check_number

let check_string = Test_js.check_string

let check_bool = Test_js.check_bool

(* --- scoping & closures ------------------------------------------------ *)

let test_closure_in_loop_shares_binding () =
  (* The classic var-capture bug: all closures see the final value. *)
  check_string
    {|var fs = [];
for (var i = 0; i < 3; i++) { fs.push(function () { return i; }); }
var r = "" + fs[0]() + fs[1]() + fs[2]();|}
    "r" "333"

let test_iife_isolates () =
  check_string
    {|var fs = [];
for (var i = 0; i < 3; i++) {
  (function (j) { fs.push(function () { return j; }); })(i);
}
var r = "" + fs[0]() + fs[1]() + fs[2]();|}
    "r" "012"

let test_shadowing () =
  check_number
    {|var x = 1;
function f() { var x = 2; return x; }
var r = f() * 10 + x;|}
    "r" 21.

let test_assignment_without_var_leaks_global () =
  check_number {|function f() { leaked = 9; } f(); var r = leaked;|} "r" 9.

let test_nested_closure_mutation () =
  check_number
    {|function box() {
  var v = 0;
  return { inc: function () { v = v + 1; }, get: function () { return v; } };
}
var b = box(); b.inc(); b.inc(); b.inc(); var r = b.get();|}
    "r" 3.

(* --- this binding -------------------------------------------------- *)

let test_this_method_vs_bare_call () =
  check_string
    {|var o = { tag: "obj", read: function () { return this.tag; } };
var bare = o.read;
var r = o.read() + "/" + (typeof bare());|}
    "r" "obj/undefined"

let test_this_in_new () =
  check_number
    {|function C() { this.v = 5; }
var c = new C();
var r = c.v;|}
    "r" 5.

let test_call_apply_rebind () =
  check_string
    {|function who() { return this.name; }
var r = who.call({ name: "a" }) + who.apply({ name: "b" });|}
    "r" "ab"

(* --- prototypes ----------------------------------------------------- *)

let test_prototype_shadowing () =
  check_string
    {|function A() {}
A.prototype.x = "proto";
var a = new A();
var before = a.x;
a.x = "own";
var r = before + "/" + a.x + "/" + new A().x;|}
    "r" "proto/own/proto"

let test_prototype_mutation_visible () =
  check_number
    {|function A() {}
var a = new A();
A.prototype.f = function () { return 7; };
var r = a.f();|}
    "r" 7.

let test_constructor_return_object () =
  (* Returning an object from a constructor overrides `this`. *)
  check_string
    {|function C() { this.v = "this"; return { v: "returned" }; }
function D() { this.v = "this"; return 42; }
var r = new C().v + "/" + new D().v;|}
    "r" "returned/this"

let test_has_own_property () =
  check_string
    {|function A() { this.own = 1; }
A.prototype.inherited = 2;
var a = new A();
var r = "" + a.hasOwnProperty("own") + a.hasOwnProperty("inherited");|}
    "r" "truefalse"

(* --- coercions ------------------------------------------------------ *)

let test_string_number_coercions () =
  check_string {|var r = 1 + "2";|} "r" "12";
  check_number {|var r = "3" - 1;|} "r" 2.;
  check_number {|var r = "2" * "3";|} "r" 6.;
  check_string {|var r = "" + true;|} "r" "true";
  check_string {|var r = "" + null;|} "r" "null";
  check_string {|var r = "" + undefined;|} "r" "undefined";
  check_string {|var r = "" + [1, 2];|} "r" "1,2";
  check_bool {|var r = isNaN(undefined + 1);|} "r" true

let test_truthiness_table () =
  check_string
    {|function t(v) { return v ? "T" : "F"; }
var r = t(0) + t(-0) + t("") + t(null) + t(undefined) + t(NaN)
      + t(1) + t("0") + t([]) + t({});|}
    "r" "FFFFFFTTTT"

let test_loose_equality_table () =
  check_string
    {|function e(a, b) { return (a == b) ? "Y" : "N"; }
var r = e(0, "") + e(0, "0") + e("", "0") + e(null, undefined) + e(null, 0)
      + e(1, true) + e("1", true);|}
    "r" "YYNYNYY"

let test_comparison_of_strings () =
  check_bool {|var r = ("apple" < "banana");|} "r" true;
  check_bool {|var r = ("10" < "9");|} "r" true;
  check_bool {|var r = (10 < 9);|} "r" false;
  check_bool {|var r = ("10" < 9);|} "r" false

(* --- numbers --------------------------------------------------------- *)

let test_float_behavior () =
  check_bool {|var r = (0.1 + 0.2 === 0.3);|} "r" false;
  check_bool {|var r = (1 / 0 === Infinity);|} "r" true;
  check_bool {|var r = (-1 / 0 === -Infinity);|} "r" true;
  check_bool {|var r = (0 / 0 !== 0 / 0);|} "r" true

let test_integer_ops () =
  check_number {|var r = 7 % 3;|} "r" 1.;
  check_number {|var r = -7 % 3;|} "r" (-1.);
  check_number {|var r = 5 & 3;|} "r" 1.;
  check_number {|var r = 5 | 3;|} "r" 7.;
  check_number {|var r = 5 ^ 3;|} "r" 6.;
  check_number {|var r = ~5;|} "r" (-6.);
  check_number {|var r = -8 >> 1;|} "r" (-4.);
  check_number {|var r = -8 >>> 28;|} "r" 15.

let test_parse_int_float () =
  check_number {|var r = parseInt("42px");|} "r" 42.;
  check_number {|var r = parseInt("0x1F", 16);|} "r" 31.;
  check_number {|var r = parseInt("101", 2);|} "r" 5.;
  check_bool {|var r = isNaN(parseInt("px"));|} "r" true;
  check_number {|var r = parseFloat("3.25rem");|} "r" 3.25

(* --- statements ----------------------------------------------------- *)

let test_switch_fallthrough_and_default_position () =
  (* A default in the middle still falls through to later cases. *)
  check_string
    {|var r = "";
switch (0) { case 1: r += "a"; default: r += "d"; case 2: r += "b"; }|}
    "r" "db"

let test_break_in_nested_loop () =
  check_number
    {|var count = 0;
var i; var j;
for (i = 0; i < 3; i++) { for (j = 0; j < 3; j++) { if (j === 1) { break; } count++; } }
var r = count;|}
    "r" 3.

let test_do_while_runs_once () =
  check_number {|var r = 0; do { r++; } while (false);|} "r" 1.

let test_comma_operator () =
  check_number {|var r = (1, 2, 3);|} "r" 3.

let test_conditional_chains () =
  check_string
    {|function grade(n) { return n > 89 ? "A" : n > 79 ? "B" : "C"; }
var r = grade(95) + grade(85) + grade(10);|}
    "r" "ABC"

let test_ternary_assignment_precedence () =
  check_number {|var x = 0; var r = true ? x = 5 : x = 9;|} "r" 5.

(* --- exceptions ------------------------------------------------------- *)

let test_exception_unwinds_loops () =
  check_number
    {|var r = 0;
try { var i; for (i = 0; i < 10; i++) { r = i; if (i === 4) { throw "stop"; } } }
catch (e) { }|}
    "r" 4.

let test_rethrow () =
  check_string
    {|var r = "";
function inner() { throw new Error("boom"); }
function middle() { try { inner(); } catch (e) { r += "m"; throw e; } }
try { middle(); } catch (e) { r += "o:" + e.message; }|}
    "r" "mo:boom"

let test_finally_ordering () =
  (* The finally side effect lands before the call returns; the caller
     concatenates afterwards. *)
  check_string
    {|var log = "";
function f() { try { log += "t"; return "ret"; } finally { log += "f"; } }
var out = f();
var r = log + out;|}
    "r" "tfret"

let test_catch_scoping () =
  (* The catch parameter shadows but does not leak. *)
  check_string
    {|var e = "outer";
try { throw "inner"; } catch (e) { var seen = e; }
var r = e + "/" + seen;|}
    "r" "outer/inner"

(* --- functions ------------------------------------------------------- *)

let test_arguments_object () =
  check_number
    {|function sum() {
  var total = 0;
  var i;
  for (i = 0; i < arguments.length; i++) { total += arguments[i]; }
  return total;
}
var r = sum(1, 2, 3, 4);|}
    "r" 10.

let test_missing_and_extra_args () =
  check_string
    {|function f(a, b) { return "" + a + "/" + b; }
var r = f(1) + " " + f(1, 2, 3);|}
    "r" "1/undefined 1/2"

let test_recursion_mutual () =
  check_bool
    {|function isEven(n) { return n === 0 ? true : isOdd(n - 1); }
function isOdd(n) { return n === 0 ? false : isEven(n - 1); }
var r = isEven(10) && isOdd(7);|}
    "r" true

let test_function_expression_name_not_bound_outside () =
  check_string
    {|var f = function named() { return 1; };
var r = typeof named;|}
    "r" "undefined"

(* --- objects & arrays ------------------------------------------------- *)

let test_delete_property () =
  check_string
    {|var o = { a: 1 };
var before = "" + o.a;
delete o.a;
var r = before + "/" + (typeof o.a);|}
    "r" "1/undefined"

let test_array_length_truncation () =
  check_string
    {|var a = [1, 2, 3, 4];
a.length = 2;
var r = a.join(",") + "/" + (typeof a[3]);|}
    "r" "1,2/undefined"

let test_sparse_array () =
  check_number {|var a = []; a[9] = 1; var r = a.length;|} "r" 10.

let test_array_methods_chain () =
  check_string
    {|var r = [5, 1, 4, 2, 3]
  .filter(function (x) { return x !== 4; })
  .map(function (x) { return x * 10; })
  .sort(function (a, b) { return a - b; })
  .join("-");|}
    "r" "10-20-30-50"

let test_object_keys_sorted () =
  check_string {|var r = Object.keys({ b: 1, a: 2, c: 3 }).join(",");|} "r" "a,b,c"

let test_in_operator () =
  check_string
    {|function A() { this.own = 1; }
A.prototype.proto = 2;
var a = new A();
var r = "" + ("own" in a) + ("proto" in a) + ("nope" in a);|}
    "r" "truetruefalse"

let test_instanceof_chain () =
  check_string
    {|function A() {}
function B() {}
B.prototype = new A();
var b = new B();
var r = "" + (b instanceof B) + (b instanceof A) + ({} instanceof A);|}
    "r" "truetruefalse"

let test_string_immutability_via_methods () =
  check_string
    {|var s = "hello";
var up = s.toUpperCase();
var r = s + "/" + up;|}
    "r" "hello/HELLO"

let suite =
  [
    Alcotest.test_case "closure in loop" `Quick test_closure_in_loop_shares_binding;
    Alcotest.test_case "iife isolation" `Quick test_iife_isolates;
    Alcotest.test_case "shadowing" `Quick test_shadowing;
    Alcotest.test_case "implicit global" `Quick test_assignment_without_var_leaks_global;
    Alcotest.test_case "closure mutation" `Quick test_nested_closure_mutation;
    Alcotest.test_case "this: method vs bare" `Quick test_this_method_vs_bare_call;
    Alcotest.test_case "this: new" `Quick test_this_in_new;
    Alcotest.test_case "this: call/apply" `Quick test_call_apply_rebind;
    Alcotest.test_case "prototype shadowing" `Quick test_prototype_shadowing;
    Alcotest.test_case "prototype mutation" `Quick test_prototype_mutation_visible;
    Alcotest.test_case "constructor return" `Quick test_constructor_return_object;
    Alcotest.test_case "hasOwnProperty" `Quick test_has_own_property;
    Alcotest.test_case "coercions" `Quick test_string_number_coercions;
    Alcotest.test_case "truthiness table" `Quick test_truthiness_table;
    Alcotest.test_case "loose equality table" `Quick test_loose_equality_table;
    Alcotest.test_case "string comparison" `Quick test_comparison_of_strings;
    Alcotest.test_case "float behavior" `Quick test_float_behavior;
    Alcotest.test_case "integer ops" `Quick test_integer_ops;
    Alcotest.test_case "parseInt/parseFloat" `Quick test_parse_int_float;
    Alcotest.test_case "switch default position" `Quick test_switch_fallthrough_and_default_position;
    Alcotest.test_case "nested loop break" `Quick test_break_in_nested_loop;
    Alcotest.test_case "do-while" `Quick test_do_while_runs_once;
    Alcotest.test_case "comma operator" `Quick test_comma_operator;
    Alcotest.test_case "conditional chains" `Quick test_conditional_chains;
    Alcotest.test_case "ternary precedence" `Quick test_ternary_assignment_precedence;
    Alcotest.test_case "exception unwinds" `Quick test_exception_unwinds_loops;
    Alcotest.test_case "rethrow" `Quick test_rethrow;
    Alcotest.test_case "finally ordering" `Quick test_finally_ordering;
    Alcotest.test_case "catch scoping" `Quick test_catch_scoping;
    Alcotest.test_case "arguments object" `Quick test_arguments_object;
    Alcotest.test_case "arg count mismatch" `Quick test_missing_and_extra_args;
    Alcotest.test_case "mutual recursion" `Quick test_recursion_mutual;
    Alcotest.test_case "function expr name" `Quick test_function_expression_name_not_bound_outside;
    Alcotest.test_case "delete property" `Quick test_delete_property;
    Alcotest.test_case "array length truncation" `Quick test_array_length_truncation;
    Alcotest.test_case "sparse array" `Quick test_sparse_array;
    Alcotest.test_case "array method chain" `Quick test_array_methods_chain;
    Alcotest.test_case "Object.keys" `Quick test_object_keys_sorted;
    Alcotest.test_case "in operator" `Quick test_in_operator;
    Alcotest.test_case "instanceof chain" `Quick test_instanceof_chain;
    Alcotest.test_case "string immutability" `Quick test_string_immutability_via_methods;
  ]
