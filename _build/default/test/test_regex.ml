(* Tests for the regex engine, standalone and through MiniJS. *)

open Wr_js

let re ?(flags = "") pattern =
  match Regex.compile ~pattern ~flags with
  | Ok t -> t
  | Error msg -> Alcotest.failf "compile %S failed: %s" pattern msg

let matched ?(flags = "") pattern s =
  match Regex.exec (re ~flags pattern) s ~start:0 with
  | Some r -> Some (String.sub s r.Regex.start (r.Regex.stop - r.Regex.start))
  | None -> None

let check_match ?(flags = "") pattern s expected =
  Alcotest.(check (option string))
    (Printf.sprintf "/%s/%s on %S" pattern flags s)
    expected (matched ~flags pattern s)

let test_literals () =
  check_match "abc" "xxabcyy" (Some "abc");
  check_match "abc" "ab" None;
  check_match "a.c" "a!c" (Some "a!c");
  check_match "a.c" "a\nc" None;
  check_match "a\\.c" "a.c" (Some "a.c");
  check_match "a\\.c" "axc" None

let test_classes () =
  check_match "[abc]+" "zzcabz" (Some "cab");
  check_match "[^abc]+" "abXYab" (Some "XY");
  check_match "[a-f0-9]+" "zz3fa9z" (Some "3fa9");
  check_match "[-a]+" "b-a-b" (Some "-a-");
  check_match "\\d+" "order 1234 now" (Some "1234");
  check_match "\\w+" "  hi_there9 " (Some "hi_there9");
  check_match "\\s+" "ab \t\ncd" (Some " \t\n");
  check_match "\\D+" "12ab34" (Some "ab");
  check_match "[\\d]+" "x42" (Some "42")

let test_quantifiers () =
  check_match "ab*c" "ac" (Some "ac");
  check_match "ab*c" "abbbc" (Some "abbbc");
  check_match "ab+c" "ac" None;
  check_match "ab?c" "abc" (Some "abc");
  check_match "a{3}" "aaaa" (Some "aaa");
  check_match "a{2,}" "aaaa" (Some "aaaa");
  check_match "a{2,3}" "aaaa" (Some "aaa");
  check_match "a{2,3}?" "aaaa" (Some "aa");
  (* Greedy vs lazy. *)
  check_match "<.*>" "<a><b>" (Some "<a><b>");
  check_match "<.*?>" "<a><b>" (Some "<a>");
  (* A brace that is not a quantifier stays literal. *)
  check_match "a{x}" "za{x}z" (Some "a{x}")

let test_alternation_groups () =
  check_match "cat|dog" "hotdog" (Some "dog");
  check_match "(ab)+" "ababab" (Some "ababab");
  check_match "a(b|c)d" "acd" (Some "acd");
  check_match "(?:ab)+c" "ababc" (Some "ababc")

let test_anchors () =
  check_match "^abc" "abcdef" (Some "abc");
  check_match "^bcd" "abcdef" None;
  check_match "def$" "abcdef" (Some "def");
  check_match "abc$" "abcdef" None;
  check_match ~flags:"m" "^b$" "a\nb\nc" (Some "b");
  check_match "\\bword\\b" "a word here" (Some "word");
  check_match "\\bword\\b" "sword" None;
  check_match "\\Bord\\b" "sword" (Some "ord")

let test_case_insensitive () =
  check_match ~flags:"i" "hello" "say HeLLo!" (Some "HeLLo");
  check_match ~flags:"i" "[a-z]+" "ABC" (Some "ABC")

let test_groups_capture () =
  let t = re "(\\d+)-(\\d+)" in
  match Regex.exec t "range 10-25 end" ~start:0 with
  | Some r ->
      let g i =
        match r.Regex.groups.(i) with
        | Some (a, b) -> String.sub "range 10-25 end" a (b - a)
        | None -> "<none>"
      in
      Alcotest.(check string) "whole" "10-25" (g 0);
      Alcotest.(check string) "g1" "10" (g 1);
      Alcotest.(check string) "g2" "25" (g 2)
  | None -> Alcotest.fail "no match"

let test_replace () =
  Alcotest.(check string) "first only" "X-b-a"
    (Regex.replace (re "a") "a-b-a" ~by:"X");
  Alcotest.(check string) "global" "X-b-X"
    (Regex.replace (re ~flags:"g" "a") "a-b-a" ~by:"X");
  Alcotest.(check string) "group templates" "25-10"
    (Regex.replace (re "(\\d+)-(\\d+)") "10-25" ~by:"$2-$1");
  Alcotest.(check string) "whole-match template" "[ab]"
    (Regex.replace (re "a+b") "ab" ~by:"[$&]");
  Alcotest.(check string) "dollar escape" "$"
    (Regex.replace (re "x") "x" ~by:"$$")

let test_split_and_match_all () =
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ]
    (Regex.split (re ~flags:"g" "\\s*,\\s*") "a, b ,c");
  Alcotest.(check int) "match_all count" 3
    (List.length (Regex.match_all (re ~flags:"g" "\\d+") "1 22 333"));
  (* Empty matches must advance. *)
  Alcotest.(check bool) "empty match progress" true
    (List.length (Regex.match_all (re ~flags:"g" "x*") "abc") <= 4)

let test_compile_errors () =
  let bad pattern =
    match Regex.compile ~pattern ~flags:"" with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" pattern
  in
  List.iter bad [ "("; "[a"; "a)"; "*"; "(?=x)"; "\\1"; "a{3,1}" ];
  match Regex.compile ~pattern:"a" ~flags:"y" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad flag"

(* --- through MiniJS ------------------------------------------------- *)

let check_string = Test_js.check_string

let check_bool = Test_js.check_bool

let check_number = Test_js.check_number

let test_js_regex_literal () =
  check_bool {|var r = /ab+c/.test("xabbc");|} "r" true;
  check_bool {|var r = /ab+c/.test("ac");|} "r" false;
  check_string {|var r = "a1b22c".replace(/\d+/g, "#");|} "r" "a#b#c";
  check_string {|var m = "v1.2.3".match(/(\d+)\.(\d+)/); var r = m[1] + "+" + m[2];|} "r" "1+2";
  check_number {|var r = "one two".search(/two/);|} "r" 4.;
  check_number {|var r = "one two".search(/zzz/);|} "r" (-1.);
  check_string {|var r = "a , b,c".split(/\s*,\s*/).join("|");|} "r" "a|b|c"

let test_js_regexp_constructor () =
  check_bool {|var re = new RegExp("^h", "i"); var r = re.test("Hello");|} "r" true;
  check_string {|var re = new RegExp("l+"); var r = "hello".replace(re, "L");|} "r" "heLo";
  check_string {|var r = /x/.source + "/" + /x/gi.flags;|} "r" "x/gi"

let test_js_regex_exec () =
  check_string
    {|var m = /(\w+)@(\w+)/.exec("mail: bob@host now");
var r = m[0] + "," + m[1] + "," + m[2] + "," + m.index;|}
    "r" "bob@host,bob,host,6";
  check_bool {|var r = (/nope/.exec("hay") === null);|} "r" true

let test_js_regex_division_not_confused () =
  (* The classic lexer ambiguity: division where a regex cannot start. *)
  check_number {|var a = 10; var b = 2; var r = a / b / 1;|} "r" 5.;
  check_number {|var r = (8) / 4;|} "r" 2.;
  check_bool {|var x = 4; var r = /4/.test("" + x / 2 / 1);|} "r" false

let suite =
  [
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "classes" `Quick test_classes;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "alternation/groups" `Quick test_alternation_groups;
    Alcotest.test_case "anchors" `Quick test_anchors;
    Alcotest.test_case "ignore case" `Quick test_case_insensitive;
    Alcotest.test_case "captures" `Quick test_groups_capture;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "split/match_all" `Quick test_split_and_match_all;
    Alcotest.test_case "compile errors" `Quick test_compile_errors;
    Alcotest.test_case "js: regex literals" `Quick test_js_regex_literal;
    Alcotest.test_case "js: RegExp constructor" `Quick test_js_regexp_constructor;
    Alcotest.test_case "js: exec" `Quick test_js_regex_exec;
    Alcotest.test_case "js: division ambiguity" `Quick test_js_regex_division_not_confused;
  ]
