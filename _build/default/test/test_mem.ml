(* Unit and property tests for the logical memory model (Wr_mem). *)

open Wr_mem

let var cell = Location.Js_var { cell; name = "v" }

let node uid = Location.Html_elem (Location.Node uid)

let idl ~doc ~id = Location.Html_elem (Location.Id { doc; id })

let coll ~doc ~name = Location.Html_elem (Location.Collection { doc; name })

let handler ?(slot = Location.Attr) ~target ~event () =
  Location.Event_handler { target; event; slot }

let test_conflict_policy_matrix () =
  let ww loc = Location.conflict_relevant loc ~kind:`Write ~kind':`Write in
  let rw loc = Location.conflict_relevant loc ~kind:`Read ~kind':`Write in
  (* Ordinary locations admit all conflicts. *)
  Alcotest.(check bool) "var ww" true (ww (var 1));
  Alcotest.(check bool) "node ww" true (ww (node 2));
  Alcotest.(check bool) "id ww" true (ww (idl ~doc:0 ~id:"x"));
  Alcotest.(check bool) "attr slot ww" true (ww (handler ~target:1 ~event:"load" ()));
  Alcotest.(check bool) "listener ww" true
    (ww (handler ~slot:(Location.Listener 9) ~target:1 ~event:"load" ()));
  (* Containers and collections tolerate concurrent writes... *)
  Alcotest.(check bool) "container ww suppressed" false
    (ww (handler ~slot:Location.Container ~target:1 ~event:"load" ()));
  Alcotest.(check bool) "collection ww suppressed" false (ww (coll ~doc:0 ~name:"tag:div"));
  (* ...but still conflict read-vs-write. *)
  Alcotest.(check bool) "container rw" true
    (rw (handler ~slot:Location.Container ~target:1 ~event:"load" ()));
  Alcotest.(check bool) "collection rw" true (rw (coll ~doc:0 ~name:"tag:div"))

let test_report_key_canonicalization () =
  let a = handler ~slot:Location.Attr ~target:5 ~event:"load" () in
  let l = handler ~slot:(Location.Listener 3) ~target:5 ~event:"load" () in
  let c = handler ~slot:Location.Container ~target:5 ~event:"load" () in
  Alcotest.(check bool) "attr ~ container" true
    (Location.equal (Location.report_key a) (Location.report_key c));
  Alcotest.(check bool) "listener ~ container" true
    (Location.equal (Location.report_key l) (Location.report_key c));
  let other_event = handler ~target:5 ~event:"click" () in
  Alcotest.(check bool) "different events distinct" false
    (Location.equal (Location.report_key a) (Location.report_key other_event));
  (* Non-handler locations are their own keys. *)
  Alcotest.(check bool) "var fixed" true
    (Location.equal (Location.report_key (var 3)) (var 3));
  Alcotest.(check bool) "id fixed" true
    (Location.equal (Location.report_key (idl ~doc:1 ~id:"z")) (idl ~doc:1 ~id:"z"))

let test_js_var_identity_by_cell () =
  let a = Location.Js_var { cell = 7; name = "x" } in
  let b = Location.Js_var { cell = 7; name = "renamed" } in
  let c = Location.Js_var { cell = 8; name = "x" } in
  Alcotest.(check bool) "same cell equal" true (Location.equal a b);
  Alcotest.(check bool) "same hash" true (Location.hash a = Location.hash b);
  Alcotest.(check bool) "different cell" false (Location.equal a c)

let gen_location =
  QCheck.Gen.(
    oneof
      [
        map (fun c -> var c) (int_bound 100);
        map (fun u -> node u) (int_bound 100);
        map2 (fun d i -> idl ~doc:d ~id:("id" ^ string_of_int i)) (int_bound 3) (int_bound 20);
        map2
          (fun d i -> coll ~doc:d ~name:("tag:" ^ string_of_int i))
          (int_bound 3) (int_bound 10);
        map3
          (fun t e s ->
            let slot =
              match s mod 3 with
              | 0 -> Location.Attr
              | 1 -> Location.Container
              | _ -> Location.Listener s
            in
            Location.Event_handler
              { target = t; event = (if e then "load" else "click"); slot })
          (int_bound 50) bool (int_bound 20);
      ])

let prop_equal_hash_consistent =
  QCheck.Test.make ~name:"mem: equal locations hash equally" ~count:300
    (QCheck.make (QCheck.Gen.pair gen_location gen_location)) (fun (a, b) ->
      (not (Location.equal a b)) || Location.hash a = Location.hash b)

let prop_report_key_idempotent =
  QCheck.Test.make ~name:"mem: report_key is idempotent" ~count:300
    (QCheck.make gen_location) (fun loc ->
      Location.equal
        (Location.report_key (Location.report_key loc))
        (Location.report_key loc))

let prop_tbl_respects_equality =
  QCheck.Test.make ~name:"mem: Tbl lookups follow equal" ~count:300
    (QCheck.make (QCheck.Gen.small_list gen_location)) (fun locs ->
      let tbl = Location.Tbl.create 16 in
      List.iteri (fun i loc -> Location.Tbl.replace tbl loc i) locs;
      List.for_all (fun loc -> Location.Tbl.mem tbl loc) locs)

let test_access_flags () =
  let a = Access.make (var 1) `Read 3 in
  Alcotest.(check bool) "no flags" false (Access.has_flag a Access.Form_field);
  let a = Access.add_flag a Access.Form_field in
  Alcotest.(check bool) "added" true (Access.has_flag a Access.Form_field);
  let a' = Access.add_flag a Access.Form_field in
  Alcotest.(check int) "idempotent" (List.length a.Access.flags) (List.length a'.Access.flags)

let test_instr_emit_carries_context () =
  let got = ref [] in
  let base = Instr.null () in
  let instr = { base with Instr.sink = (fun a -> got := a :: !got) } in
  instr.Instr.op <- 42;
  instr.Instr.context <- "parse <div>";
  Instr.emit instr (var 1) `Write;
  match !got with
  | [ a ] ->
      Alcotest.(check int) "op" 42 a.Access.op;
      Alcotest.(check string) "context" "parse <div>" a.Access.context
  | _ -> Alcotest.fail "expected one access"

let suite =
  [
    Alcotest.test_case "conflict policy matrix" `Quick test_conflict_policy_matrix;
    Alcotest.test_case "report_key canonicalization" `Quick test_report_key_canonicalization;
    Alcotest.test_case "js-var identity" `Quick test_js_var_identity_by_cell;
    QCheck_alcotest.to_alcotest prop_equal_hash_consistent;
    QCheck_alcotest.to_alcotest prop_report_key_idempotent;
    QCheck_alcotest.to_alcotest prop_tbl_respects_equality;
    Alcotest.test_case "access flags" `Quick test_access_flags;
    Alcotest.test_case "instr context" `Quick test_instr_emit_carries_context;
  ]
