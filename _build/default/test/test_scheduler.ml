(* Unit tests for the virtual-time event loop and network simulation. *)

open Wr_scheduler

let test_time_order () =
  let loop = Event_loop.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  ignore (Event_loop.schedule loop ~delay:30. (note "c"));
  ignore (Event_loop.schedule loop ~delay:10. (note "a"));
  ignore (Event_loop.schedule loop ~delay:20. (note "b"));
  ignore (Event_loop.run_until loop ~deadline:100.);
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order)

let test_fifo_at_same_time () =
  let loop = Event_loop.create () in
  let order = ref [] in
  for i = 1 to 5 do
    ignore (Event_loop.schedule loop ~delay:0. (fun () -> order := i :: !order))
  done;
  ignore (Event_loop.run_until loop ~deadline:1.);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_clock_advances () =
  let loop = Event_loop.create () in
  let seen = ref 0. in
  ignore (Event_loop.schedule loop ~delay:42. (fun () -> seen := Event_loop.now loop));
  ignore (Event_loop.run_until loop ~deadline:100.);
  Alcotest.(check (float 1e-9)) "clock at due time" 42. !seen

let test_nested_scheduling () =
  let loop = Event_loop.create () in
  let order = ref [] in
  ignore
    (Event_loop.schedule loop ~delay:5. (fun () ->
         order := "outer" :: !order;
         ignore (Event_loop.schedule loop ~delay:5. (fun () -> order := "inner" :: !order))));
  ignore (Event_loop.run_until loop ~deadline:100.);
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !order);
  Alcotest.(check (float 1e-9)) "clock" 10. (Event_loop.now loop)

let test_cancel () =
  let loop = Event_loop.create () in
  let ran = ref false in
  let h = Event_loop.schedule loop ~delay:1. (fun () -> ran := true) in
  Event_loop.cancel loop h;
  ignore (Event_loop.run_until loop ~deadline:10.);
  Alcotest.(check bool) "cancelled task did not run" false !ran;
  Alcotest.(check int) "queue drained" 0 (Event_loop.pending loop)

let test_deadline_stops () =
  let loop = Event_loop.create () in
  let count = ref 0 in
  (* A self-rescheduling interval: without the deadline this never ends. *)
  let rec tick () =
    incr count;
    ignore (Event_loop.schedule loop ~delay:10. tick)
  in
  ignore (Event_loop.schedule loop ~delay:10. tick);
  let ran = Event_loop.run_until loop ~deadline:100. in
  Alcotest.(check int) "ten ticks" 10 ran;
  Alcotest.(check int) "next tick still queued" 1 (Event_loop.pending loop)

let test_run_one () =
  let loop = Event_loop.create () in
  Alcotest.(check bool) "empty" false (Event_loop.run_one loop);
  ignore (Event_loop.schedule loop ~delay:1. ignore);
  Alcotest.(check bool) "ran" true (Event_loop.run_one loop)

let mk_network ?(seed = 1) ?mean_latency resources =
  let loop = Event_loop.create () in
  let rng = Wr_support.Rng.of_int seed in
  let resolve url = List.assoc_opt url resources in
  let net = Network.create ~loop ~rng ~resolve ?mean_latency () in
  (loop, net)

let test_network_fetch () =
  let loop, net = mk_network [ ("a.js", "var x = 1;") ] in
  let result = ref None in
  Network.fetch net ~url:"a.js" (fun o -> result := Some o);
  Alcotest.(check bool) "not yet delivered" true (!result = None);
  ignore (Event_loop.run_until loop ~deadline:10_000.);
  (match !result with
  | Some (Network.Fetched body) -> Alcotest.(check string) "body" "var x = 1;" body
  | _ -> Alcotest.fail "fetch failed");
  Alcotest.(check int) "counted" 1 (Network.fetches net)

let test_network_missing () =
  let loop, net = mk_network [] in
  let result = ref None in
  Network.fetch net ~url:"gone.js" (fun o -> result := Some o);
  ignore (Event_loop.run_until loop ~deadline:10_000.);
  match !result with
  | Some Network.Missing -> ()
  | _ -> Alcotest.fail "expected Missing"

let test_network_pinned_latency_orders_fetches () =
  let loop, net = mk_network [ ("fast.js", "f"); ("slow.js", "s") ] in
  Network.set_latency net ~url:"fast.js" 5.;
  Network.set_latency net ~url:"slow.js" 50.;
  let order = ref [] in
  Network.fetch net ~url:"slow.js" (fun _ -> order := "slow" :: !order);
  Network.fetch net ~url:"fast.js" (fun _ -> order := "fast" :: !order);
  ignore (Event_loop.run_until loop ~deadline:1_000.);
  Alcotest.(check (list string)) "pinned order" [ "fast"; "slow" ] (List.rev !order)

let test_network_determinism () =
  let run seed =
    let loop, net = mk_network ~seed [ ("a", "a"); ("b", "b"); ("c", "c") ] in
    let order = ref [] in
    List.iter (fun u -> Network.fetch net ~url:u (fun _ -> order := u :: !order)) [ "a"; "b"; "c" ];
    ignore (Event_loop.run_until loop ~deadline:100_000.);
    List.rev !order
  in
  Alcotest.(check (list string)) "same seed, same order" (run 7) (run 7)

let prop_heap_orders_any_schedule =
  QCheck.Test.make ~name:"event loop pops in (due, seq) order" ~count:200
    QCheck.(list (float_bound_inclusive 100.))
    (fun delays ->
      let loop = Event_loop.create () in
      let out = ref [] in
      List.iteri
        (fun i d -> ignore (Event_loop.schedule loop ~delay:d (fun () -> out := (d, i) :: !out)))
        delays;
      ignore (Event_loop.run_until loop ~deadline:1_000.);
      let result = List.rev !out in
      let sorted = List.stable_sort (fun (d1, _) (d2, _) -> compare d1 d2) result in
      result = sorted && List.length result = List.length delays)

let suite =
  [
    Alcotest.test_case "time order" `Quick test_time_order;
    Alcotest.test_case "fifo at same time" `Quick test_fifo_at_same_time;
    Alcotest.test_case "clock advances" `Quick test_clock_advances;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "deadline" `Quick test_deadline_stops;
    Alcotest.test_case "run_one" `Quick test_run_one;
    Alcotest.test_case "network fetch" `Quick test_network_fetch;
    Alcotest.test_case "network missing" `Quick test_network_missing;
    Alcotest.test_case "network pinned latency" `Quick test_network_pinned_latency_orders_fetches;
    Alcotest.test_case "network determinism" `Quick test_network_determinism;
    QCheck_alcotest.to_alcotest prop_heap_orders_any_schedule;
  ]
