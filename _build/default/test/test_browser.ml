(* Integration tests: the paper's five motivating examples (Figs. 1-5) and
   the happens-before ordering guarantees that must NOT produce races. *)

module Race = Wr_detect.Race
module Access = Wr_mem.Access
module Location = Wr_mem.Location

let analyze ?(explore = false) ?(resources = []) ?(seed = 1) page =
  Webracer.analyze (Webracer.config ~page ~resources ~seed ~explore ())

let races_of_type ty (r : Webracer.report) =
  List.filter (fun (x : Race.t) -> x.Race.race_type = ty) r.Webracer.races

let variable_races_on name r =
  List.filter
    (fun (x : Race.t) ->
      match x.Race.loc with
      | Location.Js_var { name = n; _ } -> n = name
      | _ -> false)
    (races_of_type Race.Variable r)

(* ------------------------------------------------------------------ *)
(* Fig. 1: variable race between two iframes                           *)
(* ------------------------------------------------------------------ *)

let fig1_page = {|<script>x = 1;</script>
<iframe src="a.html"></iframe>
<iframe src="b.html"></iframe>|}

let fig1_resources =
  [ ("a.html", "<script>x = 2;</script>"); ("b.html", "<script>alert(x);</script>") ]

let test_fig1_variable_race () =
  let r = analyze ~resources:fig1_resources fig1_page in
  match variable_races_on "x" r with
  | [ race ] ->
      (* The race is between the frames, not with the main script: the
         main page's write is ordered before both frames (rules 1b, 6). *)
      Alcotest.(check bool) "one side is a write" true
        (race.Race.first.Access.kind = `Write || race.Race.second.Access.kind = `Write)
  | l -> Alcotest.failf "expected exactly 1 variable race on x, got %d" (List.length l)

let test_fig1_main_script_ordered () =
  (* Without the second frame there is no race: the main write and the
     frame's write are ordered by rules 1b and 6. *)
  let r =
    analyze
      ~resources:[ ("a.html", "<script>x = 2;</script>") ]
      {|<script>x = 1;</script><iframe src="a.html"></iframe>|}
  in
  Alcotest.(check int) "no race" 0 (List.length (variable_races_on "x" r))

(* ------------------------------------------------------------------ *)
(* Fig. 2: Southwest form-field race                                   *)
(* ------------------------------------------------------------------ *)

let fig2_page = {|<input type="text" id="depart" />
<script>document.getElementById("depart").value = "City of Departure";</script>|}

let test_fig2_form_race () =
  let r = analyze ~explore:true fig2_page in
  let form_races =
    List.filter
      (fun (x : Race.t) ->
        Access.has_flag x.Race.first Access.Form_field
        || Access.has_flag x.Race.second Access.Form_field)
      (races_of_type Race.Variable r)
  in
  Alcotest.(check bool) "form-field race found" true (form_races <> []);
  (* It survives the paper's filters and is flagged harmful (lost input). *)
  let surviving =
    List.filter (fun (x : Race.t) -> x.Race.race_type = Race.Variable) r.Webracer.filtered
  in
  Alcotest.(check bool) "survives filters" true (surviving <> []);
  Alcotest.(check bool) "harmful hint" true
    (List.exists Race.heuristic_harmful form_races)

let test_fig2_checked_read_filtered () =
  (* The §5.3 refinement: a script that checks the field before writing is
     filtered out. *)
  let page =
    {|<input type="text" id="depart" />
<script>var el = document.getElementById("depart");
if (el.value === "") { el.value = "City of Departure"; }</script>|}
  in
  let r = analyze ~explore:true page in
  let surviving =
    List.filter (fun (x : Race.t) -> x.Race.race_type = Race.Variable) r.Webracer.filtered
  in
  Alcotest.(check int) "read-before-write race filtered" 0 (List.length surviving)

(* ------------------------------------------------------------------ *)
(* Fig. 3: Valero HTML race                                            *)
(* ------------------------------------------------------------------ *)

let fig3_page = {|<a href="javascript:show()">Send Email</a>
<script>function show() {
  var v = document.getElementById("dw");
  v.style.display = "block";
}</script>
<div id="dw" style="display:none">email form</div>|}

let test_fig3_html_race () =
  let r = analyze ~explore:true fig3_page in
  let html_races =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Html_elem (Location.Id { id = "dw"; _ }) -> true
        | _ -> false)
      (races_of_type Race.Html r)
  in
  Alcotest.(check int) "html race on #dw" 1 (List.length html_races)

let test_fig3_no_race_when_div_first () =
  (* Moving the div above the link removes the race: parse(div) precedes
     parse(a) = create(a) which precedes the click dispatch (rule 8). *)
  let page =
    {|<div id="dw" style="display:none">email form</div>
<script>function show() {
  var v = document.getElementById("dw");
  v.style.display = "block";
}</script>
<a href="javascript:show()">Send Email</a>|}
  in
  let r = analyze ~explore:true page in
  let html_races =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Html_elem (Location.Id { id = "dw"; _ }) -> true
        | _ -> false)
      (races_of_type Race.Html r)
  in
  Alcotest.(check int) "ordered, no race" 0 (List.length html_races)

(* ------------------------------------------------------------------ *)
(* Fig. 4: Mozilla function race                                       *)
(* ------------------------------------------------------------------ *)

let fig4_page = {|<iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe>
<script>function doNextStep() { return 1; }</script>|}

let test_fig4_function_race () =
  let r = analyze ~resources:[ ("sub.html", "<p>sub</p>") ] fig4_page in
  let fraces = races_of_type Race.Function_race r in
  Alcotest.(check bool) "function race on doNextStep" true
    (List.exists
       (fun (x : Race.t) ->
         match x.Race.loc with
         | Location.Js_var { name = "doNextStep"; _ } -> true
         | _ -> false)
       fraces)

let test_fig4_fixed_by_moving_script () =
  (* The paper's fix: the script above the iframe makes the declaration
     parse before the handler can run. *)
  let page =
    {|<script>function doNextStep() { return 1; }</script>
<iframe id="i" src="sub.html" onload="setTimeout(doNextStep, 20)"></iframe>|}
  in
  let r = analyze ~resources:[ ("sub.html", "<p>sub</p>") ] page in
  Alcotest.(check int) "no function race" 0 (List.length (races_of_type Race.Function_race r))

(* ------------------------------------------------------------------ *)
(* Fig. 5: event dispatch race                                         *)
(* ------------------------------------------------------------------ *)

let fig5_page = {|<iframe id="i" src="a.html"></iframe>
<script>document.getElementById("i").onload = function() { return 1; };</script>|}

let test_fig5_dispatch_race () =
  let r = analyze ~resources:[ ("a.html", "<p>nested</p>") ] fig5_page in
  let draces = races_of_type Race.Event_dispatch r in
  Alcotest.(check bool) "event dispatch race" true (draces <> []);
  (* load dispatches once, so the single-dispatch filter keeps it. *)
  let kept =
    List.filter
      (fun (x : Race.t) -> x.Race.race_type = Race.Event_dispatch)
      r.Webracer.filtered
  in
  Alcotest.(check bool) "survives single-dispatch filter" true (kept <> [])

let test_fig5_no_race_with_attribute () =
  (* Setting the handler in the tag itself orders registration (the parse
     op) before the dispatch (rule 8 via create(T)). *)
  let page = {|<iframe id="i" src="a.html" onload="1;"></iframe>|} in
  let r = analyze ~resources:[ ("a.html", "<p>nested</p>") ] page in
  Alcotest.(check int) "no dispatch race" 0
    (List.length (races_of_type Race.Event_dispatch r))

(* ------------------------------------------------------------------ *)
(* Ordering guarantees (no false positives)                            *)
(* ------------------------------------------------------------------ *)

let test_sync_script_blocks_parser () =
  let r =
    analyze
      ~resources:[ ("a.js", "x = 1;") ]
      {|<script src="a.js"></script><script>var y = x;</script>|}
  in
  Alcotest.(check int) "rule 1c orders the scripts" 0
    (List.length (variable_races_on "x" r));
  Alcotest.(check int) "no crash" 0 (List.length r.Webracer.crashes)

let test_async_scripts_race () =
  let r =
    analyze
      ~resources:[ ("a.js", "x = 1;") ]
      {|<script async="true" src="a.js"></script><script>x = 2;</script>|}
  in
  Alcotest.(check int) "async script is unordered" 1
    (List.length (variable_races_on "x" r))

let test_defer_scripts_ordered () =
  let r =
    analyze
      ~resources:[ ("a.js", "x = 1;"); ("b.js", "x = x + 1; result = x;") ]
      {|<script defer="true" src="a.js"></script><script defer="true" src="b.js"></script>|}
  in
  Alcotest.(check int) "rule 5 orders defers" 0 (List.length (variable_races_on "x" r));
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes)

let test_dcl_sees_all_parses () =
  let page =
    {|<script>document.addEventListener("DOMContentLoaded", function() {
  var el = document.getElementById("late");
  marker = el;
});</script>
<div id="late">content</div>|}
  in
  let r = analyze page in
  let html_races = races_of_type Race.Html r in
  Alcotest.(check int) "rule 12: parses precede DOMContentLoaded" 0
    (List.length html_races);
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes)

let test_window_load_after_image () =
  let page =
    {|<img id="im" src="i.png" onload="shared = 1;">
<script>window.onload = function() { var v = shared; };</script>|}
  in
  let r = analyze ~resources:[ ("i.png", "binary") ] page in
  Alcotest.(check int) "rule 15: image load precedes window load" 0
    (List.length (variable_races_on "shared" r))

let test_settimeout_ordered_with_caller () =
  let page =
    {|<script>var x = 1; setTimeout(function() { var v = x; }, 10);</script>|}
  in
  let r = analyze page in
  Alcotest.(check int) "rule 16" 0 (List.length (variable_races_on "x" r))

let test_interval_iterations_ordered () =
  let page =
    {|<script>var n = 0;
var t = setInterval(function() { n = n + 1; if (n >= 3) { clearInterval(t); } }, 10);</script>|}
  in
  let r = analyze page in
  Alcotest.(check int) "rule 17 orders iterations" 0
    (List.length (variable_races_on "n" r))

let test_xhr_rule10 () =
  let page =
    {|<script>var x = 1;
var req = new XMLHttpRequest();
req.onreadystatechange = function() { if (req.readyState === 4) { got = x + req.responseText.length; } };
req.open("GET", "data.txt");
req.send();</script>|}
  in
  let r = analyze ~resources:[ ("data.txt", "payload") ] page in
  Alcotest.(check int) "rule 10 orders send with handler" 0
    (List.length (variable_races_on "x" r));
  Alcotest.(check int) "no crash" 0 (List.length r.Webracer.crashes)

let test_gomez_pattern () =
  (* §6.3: the Gomez monitor attaches onload to images from a setInterval
     poll; the attach races with the image's load dispatch. *)
  let page =
    {|<img id="banner" src="banner.png">
<script>var t = setInterval(function() {
  var imgs = document.images;
  var i = 0;
  for (i = 0; i < imgs.length; i++) {
    if (!imgs[i].__seen) { imgs[i].__seen = true; imgs[i].onload = function() { return 1; }; }
  }
}, 10);
setTimeout(function() { clearInterval(t); }, 300);</script>|}
  in
  let r = analyze ~resources:[ ("banner.png", "img") ] page in
  let draces = races_of_type Race.Event_dispatch r in
  Alcotest.(check bool) "gomez dispatch race" true (draces <> [])

let test_ford_benign_pattern_filtered () =
  (* §6.3: polling via setTimeout until a sentinel node exists, then
     touching nodes that are guaranteed present. Races on the polled
     variable are benign; the form filter drops plain variable races. *)
  let page =
    {|<script>function addPopUp() {
  if (document.getElementById("last") != null) { found = 1; }
  else { setTimeout(addPopUp, 20); }
}
addPopUp();</script>
<div id="other">x</div>
<div id="last">y</div>|}
  in
  let r = analyze page in
  let kept_variable =
    List.filter (fun (x : Race.t) -> x.Race.race_type = Race.Variable) r.Webracer.filtered
  in
  Alcotest.(check int) "variable noise filtered" 0 (List.length kept_variable)

let test_crash_hidden_and_logged () =
  let page = {|<script>missingFunction();</script><script>after = 1;</script>|} in
  let r = analyze page in
  Alcotest.(check int) "crash recorded" 1 (List.length r.Webracer.crashes);
  (* Execution continues after the crash, like a browser. *)
  Alcotest.(check bool) "second script ran" true (r.Webracer.accesses > 0)

let test_determinism () =
  let run () =
    let r = analyze ~explore:true ~resources:fig1_resources ~seed:7 fig1_page in
    ( List.length r.Webracer.races,
      r.Webracer.ops,
      r.Webracer.accesses,
      List.length r.Webracer.crashes )
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

let test_detectors_agree_on_figures () =
  let run detector =
    let cfg =
      Webracer.config ~page:fig3_page ~seed:3 ~explore:true ~detector ()
    in
    let r = Webracer.analyze cfg in
    List.length
      (List.filter (fun (x : Race.t) -> x.Race.race_type = Race.Html) r.Webracer.races)
  in
  Alcotest.(check int) "same html races"
    (run Webracer.Config.Last_access)
    (run Webracer.Config.Full_track)

let test_script_inserted_external () =
  (* Script-inserted external scripts execute whenever fetched — they race
     with later page scripts (§3.3). *)
  let page =
    {|<div id="container"></div>
<script>var s = document.createElement("script");
s.src = "late.js";
document.getElementById("container").appendChild(s);</script>
<script>x = 2;</script>|}
  in
  let r = analyze ~resources:[ ("late.js", "x = 1;") ] page in
  Alcotest.(check int) "inserted script races" 1 (List.length (variable_races_on "x" r))

let test_hb_strategies_agree_end_to_end () =
  let run strategy =
    let cfg =
      Webracer.config ~page:fig1_page ~resources:fig1_resources ~seed:5
        ~hb_strategy:strategy ()
    in
    let r = Webracer.analyze cfg in
    List.map
      (fun (x : Race.t) -> (Race.type_name x.Race.race_type, Location.to_string x.Race.loc))
      r.Webracer.races
  in
  Alcotest.(check bool) "dfs = closure" true
    (run Wr_hb.Graph.Dfs = run Wr_hb.Graph.Closure);
  Alcotest.(check bool) "dfs = chain-vc" true
    (run Wr_hb.Graph.Dfs = run Wr_hb.Graph.Chain_vc)

let suite =
  [
    Alcotest.test_case "fig1: iframe variable race" `Quick test_fig1_variable_race;
    Alcotest.test_case "fig1: main script ordered" `Quick test_fig1_main_script_ordered;
    Alcotest.test_case "fig2: form race" `Quick test_fig2_form_race;
    Alcotest.test_case "fig2: checked write filtered" `Quick test_fig2_checked_read_filtered;
    Alcotest.test_case "fig3: html race" `Quick test_fig3_html_race;
    Alcotest.test_case "fig3: fixed order" `Quick test_fig3_no_race_when_div_first;
    Alcotest.test_case "fig4: function race" `Quick test_fig4_function_race;
    Alcotest.test_case "fig4: fixed order" `Quick test_fig4_fixed_by_moving_script;
    Alcotest.test_case "fig5: dispatch race" `Quick test_fig5_dispatch_race;
    Alcotest.test_case "fig5: attribute is safe" `Quick test_fig5_no_race_with_attribute;
    Alcotest.test_case "sync script blocks" `Quick test_sync_script_blocks_parser;
    Alcotest.test_case "async script races" `Quick test_async_scripts_race;
    Alcotest.test_case "defer ordered" `Quick test_defer_scripts_ordered;
    Alcotest.test_case "DOMContentLoaded" `Quick test_dcl_sees_all_parses;
    Alcotest.test_case "window load vs image" `Quick test_window_load_after_image;
    Alcotest.test_case "setTimeout ordered" `Quick test_settimeout_ordered_with_caller;
    Alcotest.test_case "setInterval chain" `Quick test_interval_iterations_ordered;
    Alcotest.test_case "xhr rule 10" `Quick test_xhr_rule10;
    Alcotest.test_case "gomez pattern" `Quick test_gomez_pattern;
    Alcotest.test_case "ford pattern filtered" `Quick test_ford_benign_pattern_filtered;
    Alcotest.test_case "crashes hidden" `Quick test_crash_hidden_and_logged;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "detectors agree" `Quick test_detectors_agree_on_figures;
    Alcotest.test_case "script-inserted external" `Quick test_script_inserted_external;
    Alcotest.test_case "hb strategies agree" `Quick test_hb_strategies_agree_end_to_end;
  ]
