(* Rule-by-rule happens-before tests (paper §3.3 rules 1-17 + Appendix A).

   Each test loads a minimal page, then asserts ordering facts directly on
   the happens-before graph, locating operations by their labels. This
   pins every rule to an explicit regression, independent of the
   race-detection layer. *)

module Browser = Wr_browser.Browser
module Config = Wr_browser.Config
module Graph = Wr_hb.Graph
module Op = Wr_hb.Op

let load ?(resources = []) ?(after = fun _ -> ()) page =
  let cfg =
    { (Config.default ~page ()) with Config.resources; explore = false; seed = 5 }
  in
  let b = Browser.create cfg in
  Browser.start b;
  ignore (Browser.run b);
  after b;
  ignore (Browser.run b);
  b

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let ops_matching b needle =
  let out = ref [] in
  Graph.iter_ops
    (fun info -> if contains ~needle info.Op.label then out := info.Op.id :: !out)
    (Browser.graph b);
  List.rev !out

let the_op b needle =
  match ops_matching b needle with
  | [ op ] -> op
  | l -> Alcotest.failf "expected exactly one op matching %S, got %d" needle (List.length l)

let the_op_exact b label =
  let out = ref [] in
  Graph.iter_ops
    (fun info -> if String.equal info.Op.label label then out := info.Op.id :: !out)
    (Browser.graph b);
  match !out with
  | [ op ] -> op
  | l -> Alcotest.failf "expected exactly one op labelled %S, got %d" label (List.length l)

let first_op b needle =
  match ops_matching b needle with
  | op :: _ -> op
  | [] -> Alcotest.failf "no op matching %S" needle

let hb b x y = Graph.happens_before (Browser.graph b) x y

let check_hb b ~msg x y = Alcotest.(check bool) msg true (hb b x y)

let check_not_hb b ~msg x y = Alcotest.(check bool) msg false (hb b x y)

(* Rule 1a: parse(E1) -> parse(E2) in syntactic order. *)
let test_rule_1a () =
  let b = load {|<div>x</div><p>y</p>|} in
  check_hb b ~msg:"parse div -> parse p" (the_op b "parse <div>") (the_op b "parse <p>")

(* Rule 1b: an inline script's execution precedes later parses. *)
let test_rule_1b () =
  let b = load {|<script>x = 1;</script><div>y</div>|} in
  check_hb b ~msg:"exe inline -> parse div" (the_op b "script (inline)")
    (the_op b "parse <div>")

(* Rule 1c: a synchronous script's load event precedes later parses. *)
let test_rule_1c () =
  let b = load ~resources:[ ("s.js", "x = 1;") ] {|<script src="s.js"></script><div>y</div>|} in
  let script_load = first_op b "dispatch load" in
  check_hb b ~msg:"ld(script) -> parse div" script_load (the_op b "parse <div>")

(* Rule 2: create(E) -> exe(E). *)
let test_rule_2 () =
  let b = load ~resources:[ ("s.js", "x = 1;") ] {|<script async="true" src="s.js"></script>|} in
  check_hb b ~msg:"parse script -> exe" (the_op b "parse <script>") (the_op b "script s.js")

(* Rule 3: exe(E) -> ld(E). *)
let test_rule_3 () =
  let b = load ~resources:[ ("s.js", "x = 1;") ] {|<script src="s.js"></script>|} in
  check_hb b ~msg:"exe -> ld(script)" (the_op b "script s.js") (first_op b "dispatch load")

(* Rule 4: elements created before DOMContentLoaded precede deferred
   execution. *)
let test_rule_4 () =
  let b =
    load ~resources:[ ("d.js", "x = 1;") ]
      {|<div>early</div><script defer="true" src="d.js"></script>|}
  in
  check_hb b ~msg:"parse div -> exe defer" (the_op b "parse <div>") (the_op b "d.js (defer)")

(* Rule 5: deferred scripts execute in syntactic order. *)
let test_rule_5 () =
  let b =
    load
      ~resources:[ ("d1.js", "x = 1;"); ("d2.js", "y = 2;") ]
      {|<script defer="true" src="d1.js"></script><script defer="true" src="d2.js"></script>|}
  in
  check_hb b ~msg:"defer1 -> defer2" (the_op b "d1.js (defer)") (the_op b "d2.js (defer)")

(* Rule 6: create(I) precedes everything in the nested document. *)
let test_rule_6 () =
  let b = load ~resources:[ ("f.html", "<p>inner</p>") ] {|<iframe src="f.html"></iframe>|} in
  check_hb b ~msg:"parse iframe -> nested parse" (the_op b "parse <iframe>")
    (the_op b "parse <p>")

(* Rules 7 and 15: nested window load -> iframe load -> outer window load. *)
let test_rules_7_and_15 () =
  let b = load ~resources:[ ("f.html", "<p>inner</p>") ] {|<iframe src="f.html"></iframe>|} in
  match ops_matching b "dispatch load" with
  | [ child_window; iframe_elem; main_window ] ->
      check_hb b ~msg:"rule 7: ld(W_I) -> ld(I)" child_window iframe_elem;
      check_hb b ~msg:"rule 15: ld(I) -> ld(W)" iframe_elem main_window
  | l -> Alcotest.failf "expected 3 load dispatches, got %d" (List.length l)

(* Rule 8: create(T) precedes any dispatch on T. *)
let test_rule_8 () =
  let b = load ~resources:[ ("i.png", "png") ] {|<img src="i.png">|} in
  check_hb b ~msg:"parse img -> ld(img)" (the_op b "parse <img>") (first_op b "dispatch load")

(* Rule 9: the i-th dispatch of an event precedes the (i+1)-th. *)
let test_rule_9 () =
  let b =
    load {|<div id="d" onmouseover="x = 1;">go</div>|} ~after:(fun b ->
        match Browser.explorable_handler_targets b with
        | (target, "mouseover") :: _ ->
            Browser.schedule_user_event b ~target ~event:"mouseover";
            Browser.schedule_user_event b ~target ~event:"mouseover"
        | _ -> Alcotest.fail "no mouseover target registered")
  in
  check_hb b ~msg:"mouseover[0] -> mouseover[1]"
    (the_op b "dispatch mouseover[0]")
    (the_op b "dispatch mouseover[1]")

(* Rule 10: invoking send() precedes the readystatechange dispatch. *)
let test_rule_10 () =
  let b =
    load
      ~resources:[ ("d.txt", "data") ]
      {|<script>var r = new XMLHttpRequest(); r.open("GET", "d.txt"); r.send();</script>|}
  in
  check_hb b ~msg:"send -> readystatechange" (the_op b "script (inline)")
    (the_op b "dispatch readystatechange[0]")

(* Rule 11: DOMContentLoaded precedes window load. *)
let test_rule_11 () =
  let b = load {|<div>x</div>|} in
  check_hb b ~msg:"dcl -> ld(W)" (the_op b "dispatch DOMContentLoaded")
    (first_op b "dispatch load")

(* Rules 12 and 13: static parses and inline executions precede
   DOMContentLoaded. *)
let test_rules_12_13 () =
  let b = load {|<script>x = 1;</script><div>y</div>|} in
  let dcl = the_op b "dispatch DOMContentLoaded" in
  check_hb b ~msg:"rule 12: parse -> dcl" (the_op b "parse <div>") dcl;
  check_hb b ~msg:"rule 13: exe inline -> dcl" (the_op b "script (inline)") dcl

(* Rule 14: a deferred script's load event precedes DOMContentLoaded. *)
let test_rule_14 () =
  let b =
    load ~resources:[ ("d.js", "x = 1;") ] {|<script defer="true" src="d.js"></script>|}
  in
  check_hb b ~msg:"ld(defer) -> dcl" (first_op b "dispatch load")
    (the_op b "dispatch DOMContentLoaded")

(* Rule 15 for images: ld(img) -> ld(W). *)
let test_rule_15_image () =
  let b = load ~resources:[ ("i.png", "png") ] {|<img src="i.png">|} in
  match ops_matching b "dispatch load" with
  | [ img_load; window_load ] -> check_hb b ~msg:"ld(img) -> ld(W)" img_load window_load
  | l -> Alcotest.failf "expected 2 load dispatches, got %d" (List.length l)

(* Rule 16: the operation calling setTimeout precedes the callback. *)
let test_rule_16 () =
  let b = load {|<script>setTimeout(function () { return 1; }, 10);</script>|} in
  check_hb b ~msg:"caller -> cb" (the_op b "script (inline)") (the_op b "setTimeout callback")

(* Rule 17: interval iterations are chained. *)
let test_rule_17 () =
  let b =
    load
      {|<script>var n = 0; var t = setInterval(function () { n = n + 1; if (n >= 3) { clearInterval(t); } }, 10);</script>|}
  in
  let caller = the_op b "script (inline)" in
  let cb0 = the_op b "setInterval callback #0" in
  let cb1 = the_op b "setInterval callback #1" in
  let cb2 = the_op b "setInterval callback #2" in
  check_hb b ~msg:"caller -> cb0" caller cb0;
  check_hb b ~msg:"cb0 -> cb1" cb0 cb1;
  check_hb b ~msg:"cb1 -> cb2" cb1 cb2

(* Async scripts are NOT chained into the parse order (only rules 2/3/15
   apply) — the negative case that exposes races. *)
let test_async_unordered () =
  let b =
    load ~resources:[ ("a.js", "x = 1;") ]
      {|<script async="true" src="a.js"></script><script>y = 2;</script>|}
  in
  let async_exe = the_op b "script a.js" in
  let inline_exe = the_op b "script (inline)" in
  check_not_hb b ~msg:"async not before inline" async_exe inline_exe;
  check_not_hb b ~msg:"inline not before async" inline_exe async_exe

(* Appendix A: inline dispatch splits the interrupted operation. *)
let test_appendix_a_splitting () =
  let b =
    load
      {|<div id="d" onclick="marker = 1;">go</div>
<script>document.getElementById("d").click(); tail = 2;</script>|}
  in
  let script = the_op_exact b "script (inline)" in
  let anchor = the_op b "dispatch click[0]" in
  let handler = the_op b "click handler" in
  let segment = the_op b "[segment" in
  check_hb b ~msg:"A[0:k) -> dispatch" script anchor;
  check_hb b ~msg:"dispatch -> handlers" anchor handler;
  check_hb b ~msg:"handlers -> A[k+1:)" handler segment;
  check_hb b ~msg:"A[0:k) -> A[k+1:)" script segment

(* Appendix A phasing: a capture handler on an ancestor precedes the
   target-phase handler of the same dispatch. *)
let test_appendix_a_phasing () =
  let b =
    load
      {|<div id="outer"><button id="inner">hit</button></div>
<script>
  document.getElementById("outer").addEventListener("mouseover", function () { a = 1; }, true);
  document.getElementById("inner").onmouseover = function () { b = 2; };
</script>|}
      ~after:(fun b ->
        match
          List.filter (fun (_, e) -> e = "mouseover") (Browser.explorable_handler_targets b)
        with
        | targets -> (
            (* The innermost registered target has the largest uid. *)
            match List.rev targets with
            | (target, _) :: _ -> Browser.schedule_user_event b ~target ~event:"mouseover"
            | [] -> Alcotest.fail "no mouseover targets"))
  in
  let capture = the_op b "mouseover handler (capture)" in
  let target = the_op b "mouseover handler (target)" in
  check_hb b ~msg:"capture phase -> target phase" capture target

(* clearTimeout extension: cancelling from an unordered op races with the
   callback's liveness read; cancelling from the scheduling chain does
   not fire the callback at all. *)
let test_clear_timeout_cancels () =
  let b =
    load
      {|<script>var t = setTimeout(function () { fired = 1; }, 50);
clearTimeout(t);</script>|}
  in
  Alcotest.(check int) "callback never ran" 0 (List.length (ops_matching b "setTimeout callback"))

let suite =
  [
    Alcotest.test_case "rule 1a: static order" `Quick test_rule_1a;
    Alcotest.test_case "rule 1b: inline script chains" `Quick test_rule_1b;
    Alcotest.test_case "rule 1c: sync script blocks" `Quick test_rule_1c;
    Alcotest.test_case "rule 2: create -> exe" `Quick test_rule_2;
    Alcotest.test_case "rule 3: exe -> load" `Quick test_rule_3;
    Alcotest.test_case "rule 4: creates -> defer exe" `Quick test_rule_4;
    Alcotest.test_case "rule 5: defer order" `Quick test_rule_5;
    Alcotest.test_case "rule 6: iframe -> nested" `Quick test_rule_6;
    Alcotest.test_case "rules 7+15: load cascade" `Quick test_rules_7_and_15;
    Alcotest.test_case "rule 8: create -> dispatch" `Quick test_rule_8;
    Alcotest.test_case "rule 9: dispatch order" `Quick test_rule_9;
    Alcotest.test_case "rule 10: xhr send" `Quick test_rule_10;
    Alcotest.test_case "rule 11: dcl -> load" `Quick test_rule_11;
    Alcotest.test_case "rules 12+13: before dcl" `Quick test_rules_12_13;
    Alcotest.test_case "rule 14: defer load -> dcl" `Quick test_rule_14;
    Alcotest.test_case "rule 15: image load" `Quick test_rule_15_image;
    Alcotest.test_case "rule 16: setTimeout" `Quick test_rule_16;
    Alcotest.test_case "rule 17: setInterval chain" `Quick test_rule_17;
    Alcotest.test_case "async scripts unordered" `Quick test_async_unordered;
    Alcotest.test_case "appendix A: splitting" `Quick test_appendix_a_splitting;
    Alcotest.test_case "appendix A: phasing" `Quick test_appendix_a_phasing;
    Alcotest.test_case "clearTimeout cancels" `Quick test_clear_timeout_cancels;
  ]

(* Nested inline dispatches: each one splits the op again, and the
   segments chain (Appendix A applied twice). *)
let test_appendix_a_nested_splitting () =
  let b =
    load
      {|<div id="a" onclick="document.getElementById('b').click(); afterInner = 1;">A</div>
<div id="b" onclick="innerRan = 1;">B</div>
<script>document.getElementById("a").click(); afterOuter = 1;</script>|}
  in
  (* Two dispatches, two handler runs, and at least two segments. *)
  Alcotest.(check int) "two dispatches (one per target)" 2
    (List.length (ops_matching b "dispatch click[0] @node"));
  let segments = ops_matching b "[segment" in
  Alcotest.(check bool) "two segments" true (List.length segments >= 2);
  (* The outer script's segment follows the inner handler's ops. *)
  let script = the_op_exact b "script (inline)" in
  let last_segment = List.fold_left max 0 segments in
  check_hb b ~msg:"script -> final segment" script last_segment

(* The virtual-time horizon bounds unbounded interval chains (config
   time_limit; the paper's tool just stops observing). *)
let test_time_limit_bounds_intervals () =
  let cfg =
    {
      (Config.default ~page:{|<script>setInterval(function () { spin = 1; }, 10);</script>|} ())
      with
      Config.time_limit = 200.;
      explore = false;
    }
  in
  let b = Browser.create cfg in
  Browser.start b;
  ignore (Browser.run b);
  let cbs = ops_matching b "setInterval callback" in
  Alcotest.(check bool) "interval ran" true (List.length cbs >= 5);
  Alcotest.(check bool) "but was bounded" true (List.length cbs <= 25);
  Alcotest.(check bool) "virtual clock at horizon" true (Browser.virtual_now b <= 200.)

let more_rules =
  [
    Alcotest.test_case "appendix A: nested splitting" `Quick test_appendix_a_nested_splitting;
    Alcotest.test_case "time limit bounds intervals" `Quick test_time_limit_bounds_intervals;
  ]

let suite = suite @ more_rules

(* Rule 4's precondition is happens-before, not wall-clock: an element
   inserted by an ASYNC script has no create(E) -> dcl(D) edge, so the
   deferred script is NOT ordered after it — the pair can race. *)
let test_rule_4_negative_async_creation () =
  let b =
    load
      ~resources:
        [
          ( "inserter.js",
            "var n = document.createElement(\"div\"); n.id = \"dyn\"; \
             document.getElementById(\"host\").appendChild(n);" );
          ("d.js", "var probe = document.getElementById(\"dyn\");");
        ]
      {|<div id="host"></div>
<script async="true" src="inserter.js"></script>
<script defer="true" src="d.js"></script>|}
  in
  let async_exe = the_op b "script inserter.js" in
  let defer_exe = the_op b "d.js (defer)" in
  check_not_hb b ~msg:"async insertion not before defer" async_exe defer_exe;
  check_not_hb b ~msg:"defer not before async insertion" defer_exe async_exe

(* Appendix A deliberately leaves handlers of the SAME dispatch, phase and
   current-target unordered (the paper errs toward fewer edges). *)
let test_appendix_a_same_group_unordered () =
  let b =
    load
      {|<div id="d">x</div>
<script>
document.getElementById("d").addEventListener("mouseover", function () { a = 1; });
document.getElementById("d").addEventListener("mouseover", function () { b = 2; });
</script>|}
      ~after:(fun b ->
        match Browser.explorable_handler_targets b with
        | (target, "mouseover") :: _ -> Browser.schedule_user_event b ~target ~event:"mouseover"
        | _ -> Alcotest.fail "no target")
  in
  match ops_matching b "mouseover handler (target)" with
  | [ h1; h2 ] ->
      check_not_hb b ~msg:"h1 not before h2" h1 h2;
      check_not_hb b ~msg:"h2 not before h1" h2 h1;
      let anchor = the_op b "dispatch mouseover[0]" in
      check_hb b ~msg:"anchor before both" anchor h1;
      check_hb b ~msg:"anchor before both (2)" anchor h2
  | l -> Alcotest.failf "expected 2 handler ops, got %d" (List.length l)

(* Accesses after an inline dispatch belong to the resumption segment, not
   to the interrupted prefix (verified through a recorded trace). *)
let test_segment_access_attribution () =
  let report =
    Webracer.analyze
      (Webracer.config
         ~page:
           {|<div id="d" onclick="inHandler = 1;">x</div>
<script>before = 1; document.getElementById("d").click(); after = 2;</script>|}
         ~explore:false ~trace:true ())
  in
  let trace = Option.get report.Webracer.trace in
  let op_of_var name =
    List.find_map
      (fun (a : Wr_mem.Access.t) ->
        match a.Wr_mem.Access.loc with
        | Wr_mem.Location.Js_var { name = n; _ } when n = name && a.Wr_mem.Access.kind = `Write ->
            Some a.Wr_mem.Access.op
        | _ -> None)
      trace.Wr_detect.Trace.accesses
  in
  let before = Option.get (op_of_var "before") in
  let in_handler = Option.get (op_of_var "inHandler") in
  let after = Option.get (op_of_var "after") in
  Alcotest.(check bool) "prefix and tail differ" true (before <> after);
  Alcotest.(check bool) "handler between them" true (before < in_handler && in_handler < after);
  let g = Wr_detect.Trace.rebuild_graph trace in
  Alcotest.(check bool) "prefix -> handler" true (Wr_hb.Graph.happens_before g before in_handler);
  Alcotest.(check bool) "handler -> tail" true (Wr_hb.Graph.happens_before g in_handler after)

let faithfulness_suite =
  [
    Alcotest.test_case "rule 4 negative (async create)" `Quick test_rule_4_negative_async_creation;
    Alcotest.test_case "appendix A: same group unordered" `Quick test_appendix_a_same_group_unordered;
    Alcotest.test_case "segment attribution" `Quick test_segment_access_attribution;
  ]

let suite = suite @ faithfulness_suite
