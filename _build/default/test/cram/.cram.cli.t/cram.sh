  $ alias webracer='../../bin/webracer_cli.exe'
  $ webracer sitegen Allstate site
  $ webracer run site/index.html --seed 3 | head -2
  $ webracer run site/index.html --seed 3 --json | tr ',' '\n' | grep -c '"type":"html"'
  $ cat > checked.html <<'HTML'
  > <input type="text" id="q" />
  > <script>var el = document.getElementById("q");
  > if (el.value === "") { el.value = "hint"; }</script>
  > HTML
  $ webracer run checked.html | head -2
  $ webracer run checked.html --raw | sed -n '7,9p' | sed 's/@[0-9]*/@N/'
  $ cat > fig4.html <<'HTML'
  > <iframe id="i" src="sub.html" onload="doNextStep();"></iframe>
  > <div>a</div><div>b</div><div>c</div>
  > <script>function doNextStep() { return 1; }</script>
  > HTML
  $ cat > sub.html <<'HTML'
  > <p>sub</p>
  > HTML
  $ webracer replay fig4.html --schedules 20 > verdict.txt; echo "exit $?"
  $ head -1 verdict.txt
  $ webracer run fig4.html --dump-trace trace.json | head -1
  $ webracer offline trace.json --detector full-track | head -2
  $ webracer offline trace.json --atomicity | grep -c 'atomicity violations:'
