(* Unit and property tests for the HTML parser. *)

open Wr_html

let first_element nodes =
  match List.find_opt (function Html.Element _ -> true | _ -> false) nodes with
  | Some (Html.Element e) -> e
  | _ -> Alcotest.fail "no element"

let test_basic_tree () =
  match Html.parse "<div id=\"a\"><p>hi</p></div><span></span>" with
  | [ Html.Element div; Html.Element span ] ->
      Alcotest.(check string) "div tag" "div" div.Html.tag;
      Alcotest.(check (option string)) "id" (Some "a") (Html.attr div "id");
      Alcotest.(check string) "span" "span" span.Html.tag;
      (match div.Html.children with
      | [ Html.Element p ] -> (
          Alcotest.(check string) "p" "p" p.Html.tag;
          match p.Html.children with
          | [ Html.Text "hi" ] -> ()
          | _ -> Alcotest.fail "p children")
      | _ -> Alcotest.fail "div children")
  | _ -> Alcotest.fail "wrong forest shape"

let test_attribute_styles () =
  let e = first_element (Html.parse "<input type=text id='x' disabled value=\"a b\">") in
  Alcotest.(check (option string)) "unquoted" (Some "text") (Html.attr e "type");
  Alcotest.(check (option string)) "single" (Some "x") (Html.attr e "id");
  Alcotest.(check (option string)) "double" (Some "a b") (Html.attr e "value");
  Alcotest.(check bool) "boolean attr" true (Html.has_attr e "disabled")

let test_void_elements () =
  match Html.parse "<img src=\"a.png\"><div>x</div>" with
  | [ Html.Element img; Html.Element div ] ->
      Alcotest.(check string) "img" "img" img.Html.tag;
      Alcotest.(check int) "img has no children" 0 (List.length img.Html.children);
      Alcotest.(check string) "div follows" "div" div.Html.tag
  | _ -> Alcotest.fail "void element swallowed its sibling"

let test_script_raw_text () =
  let e = first_element (Html.parse "<script>if (a < b && c > d) { x = '</div>'; }</script>") in
  ignore e;
  match Html.parse "<script>var x = 1 < 2;</script>" with
  | [ Html.Element s ] -> (
      match s.Html.children with
      | [ Html.Text body ] -> Alcotest.(check string) "raw body" "var x = 1 < 2;" body
      | _ -> Alcotest.fail "script body")
  | _ -> Alcotest.fail "script parse"

let test_script_close_inside_string () =
  (* The raw-text scanner stops at the first real close tag, like browsers. *)
  match Html.parse "<script>a;</script><p></p>" with
  | [ Html.Element s; Html.Element p ] ->
      Alcotest.(check string) "script" "script" s.Html.tag;
      Alcotest.(check string) "p" "p" p.Html.tag
  | _ -> Alcotest.fail "wrong shape"

let test_comments_and_doctype () =
  match Html.parse "<!DOCTYPE html><!-- a <div> inside comment --><p>x</p>" with
  | [ Html.Element p ] -> Alcotest.(check string) "p" "p" p.Html.tag
  | _ -> Alcotest.fail "comment/doctype not skipped"

let test_entities () =
  match Html.parse "<p title=\"a&amp;b\">1 &lt; 2 &#65;</p>" with
  | [ Html.Element p ] ->
      Alcotest.(check (option string)) "attr entity" (Some "a&b") (Html.attr p "title");
      (match p.Html.children with
      | [ Html.Text t ] -> Alcotest.(check string) "text entity" "1 < 2 A" t
      | _ -> Alcotest.fail "text")
  | _ -> Alcotest.fail "parse"

let test_mismatched_close_ignored () =
  match Html.parse "<div><p>x</span></p></div>" with
  | [ Html.Element div ] -> Alcotest.(check string) "div survives" "div" div.Html.tag
  | _ -> Alcotest.fail "stray close tag broke the tree"

let test_unclosed_elements_closed_at_eof () =
  match Html.parse "<div><p>x" with
  | [ Html.Element div ] -> (
      match div.Html.children with
      | [ Html.Element p ] -> Alcotest.(check string) "p" "p" p.Html.tag
      | _ -> Alcotest.fail "p lost")
  | _ -> Alcotest.fail "div lost"

let test_self_closing () =
  match Html.parse "<div/><span>x</span>" with
  | [ Html.Element d; Html.Element s ] ->
      Alcotest.(check int) "no children" 0 (List.length d.Html.children);
      Alcotest.(check string) "span is sibling" "span" s.Html.tag
  | _ -> Alcotest.fail "self-closing mishandled"

let test_case_insensitive_tags () =
  match Html.parse "<DIV ID=\"x\">a</div>" with
  | [ Html.Element d ] ->
      Alcotest.(check string) "lowercased" "div" d.Html.tag;
      Alcotest.(check (option string)) "attr lowercased" (Some "x") (Html.attr d "id")
  | _ -> Alcotest.fail "case handling"

let test_roundtrip_fixed () =
  let src = "<div id=\"a\"><script>x &lt; y;</script><img src=\"i.png\"><p>t &amp; u</p></div>" in
  let forest = Html.parse src in
  let forest' = Html.parse (Html.to_string forest) in
  Alcotest.(check bool) "parse . print . parse stable" true (forest = forest')

(* Random forest generator for the serialization round-trip property. *)
let gen_forest =
  let open QCheck.Gen in
  let tag = oneofl [ "div"; "span"; "p"; "a"; "ul"; "li" ] in
  let attr_name = oneofl [ "id"; "class"; "title"; "href" ] in
  let safe_string = string_size ~gen:(char_range 'a' 'z') (int_range 0 8) in
  let attrs =
    list_size (int_bound 2) (pair attr_name safe_string) >|= fun l ->
    (* Duplicate attribute names are legal HTML but not preserved; dedup. *)
    List.sort_uniq (fun (a, _) (b, _) -> compare a b) l
  in
  let rec node depth =
    if depth = 0 then safe_string >|= fun s -> Html.text ("t" ^ s)
    else
      frequency
        [
          (2, safe_string >|= fun s -> Html.text ("t" ^ s));
          ( 3,
            tag >>= fun t ->
            attrs >>= fun a ->
            list_size (int_bound 3) (node (depth - 1)) >|= fun children ->
            Html.el t ~attrs:a children );
        ]
  in
  list_size (int_bound 4) (node 3)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"html: parse(to_string f) = f" ~count:200 (QCheck.make gen_forest)
    (fun forest ->
      (* Adjacent text nodes merge on reparse; normalize by comparing the
         serialized forms instead of the trees. *)
      let s = Html.to_string forest in
      Html.to_string (Html.parse s) = s)

let suite =
  [
    Alcotest.test_case "basic tree" `Quick test_basic_tree;
    Alcotest.test_case "attribute styles" `Quick test_attribute_styles;
    Alcotest.test_case "void elements" `Quick test_void_elements;
    Alcotest.test_case "script raw text" `Quick test_script_raw_text;
    Alcotest.test_case "script close" `Quick test_script_close_inside_string;
    Alcotest.test_case "comments & doctype" `Quick test_comments_and_doctype;
    Alcotest.test_case "entities" `Quick test_entities;
    Alcotest.test_case "mismatched close" `Quick test_mismatched_close_ignored;
    Alcotest.test_case "unclosed at eof" `Quick test_unclosed_elements_closed_at_eof;
    Alcotest.test_case "self closing" `Quick test_self_closing;
    Alcotest.test_case "case insensitivity" `Quick test_case_insensitive_tags;
    Alcotest.test_case "fixed roundtrip" `Quick test_roundtrip_fixed;
    QCheck_alcotest.to_alcotest prop_serialize_roundtrip;
  ]
