test/test_js_conformance.ml: Alcotest Test_js
