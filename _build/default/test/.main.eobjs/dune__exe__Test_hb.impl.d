test/test_hb.ml: Alcotest Graph List Op Printf QCheck QCheck_alcotest String Wr_hb
