test/test_webracer.ml: Alcotest List String Webracer Wr_support
