test/test_support.ml: Alcotest Array Bitset Hashtbl Json List QCheck QCheck_alcotest Rng Stats String Table Wr_support
