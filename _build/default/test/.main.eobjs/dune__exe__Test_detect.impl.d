test/test_detect.ml: Access Alcotest Detector Filters Full_track Graph Last_access List Location Op Race Wr_detect Wr_hb Wr_mem
