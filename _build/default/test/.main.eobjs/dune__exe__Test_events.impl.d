test/test_events.ml: Alcotest Events List Wr_events Wr_mem
