test/test_browser2.ml: Alcotest List String Webracer Wr_detect Wr_mem
