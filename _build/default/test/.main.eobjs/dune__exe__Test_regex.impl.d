test/test_regex.ml: Alcotest Array List Printf Regex String Test_js Wr_js
