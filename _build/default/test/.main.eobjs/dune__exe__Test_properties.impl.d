test/test_properties.ml: Ast Float Hashtbl Interp List Parser Pretty Printf QCheck QCheck_alcotest String Value Webracer Wr_detect Wr_events Wr_hb Wr_html Wr_js Wr_mem
