test/test_sitegen.ml: Alcotest Eval List Patterns Printf Profile Webracer Wr_detect Wr_html Wr_sitegen Wr_support
