test/test_rules.ml: Alcotest List Option String Webracer Wr_browser Wr_detect Wr_hb Wr_mem
