test/test_js.ml: Alcotest Array Ast Float Hashtbl Interp Lexer List Parser Pretty Printf Value Wr_js Wr_mem
