test/test_html.ml: Alcotest Html List QCheck QCheck_alcotest Wr_html
