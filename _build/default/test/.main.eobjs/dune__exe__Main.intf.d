test/main.mli:
