test/test_mem.ml: Access Alcotest Instr List Location QCheck QCheck_alcotest Wr_mem
