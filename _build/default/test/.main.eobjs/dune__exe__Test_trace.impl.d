test/test_trace.ml: Alcotest Atomicity Detector Filename Fun Last_access List Option Race Sys Trace Webracer Wr_detect Wr_hb Wr_mem
