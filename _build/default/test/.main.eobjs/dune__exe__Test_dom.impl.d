test/test_dom.ml: Alcotest Dom List Wr_dom Wr_mem
