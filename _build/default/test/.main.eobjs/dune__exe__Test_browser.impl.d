test/test_browser.ml: Alcotest List Webracer Wr_detect Wr_hb Wr_mem
