test/test_site_album.ml: Alcotest List Printf String Webracer Wr_detect Wr_mem
