test/test_scheduler.ml: Alcotest Event_loop List Network QCheck QCheck_alcotest Wr_scheduler Wr_support
