(* Unit tests for the event registry and dispatch planning. *)

open Wr_events
module Location = Wr_mem.Location
module Access = Wr_mem.Access

let with_registry f =
  let log = ref [] in
  let base = Wr_mem.Instr.null () in
  let instr = { base with Wr_mem.Instr.sink = (fun a -> log := a :: !log) } in
  let reg : string Events.t = Events.create instr in
  f reg (fun () -> List.rev !log)

let test_inline_slot () =
  with_registry (fun reg log ->
      Events.set_inline reg ~target:1 ~event:"load" (Some "h1");
      Alcotest.(check (option string)) "stored" (Some "h1")
        (Events.inline reg ~target:1 ~event:"load");
      let writes = List.filter (fun (a : Access.t) -> a.Access.kind = `Write) (log ()) in
      Alcotest.(check int) "attr + container writes" 2 (List.length writes))

let test_add_remove_listener () =
  with_registry (fun reg _log ->
      let u1 = Events.add_listener reg ~target:1 ~event:"click" ~capture:false "a" in
      let u2 = Events.add_listener reg ~target:1 ~event:"click" ~capture:false "b" in
      Alcotest.(check bool) "distinct uids" true (u1 <> u2);
      Alcotest.(check int) "two" 2 (List.length (Events.listeners reg ~target:1 ~event:"click"));
      Events.remove_listener reg ~target:1 ~event:"click" ~uid:u1;
      match Events.listeners reg ~target:1 ~event:"click" with
      | [ r ] -> Alcotest.(check string) "kept b" "b" r.Events.handler
      | _ -> Alcotest.fail "remove failed")

let test_disjoint_listener_locations () =
  with_registry (fun reg log ->
      let u1 = Events.add_listener reg ~target:1 ~event:"click" ~capture:false "a" in
      let u2 = Events.add_listener reg ~target:1 ~event:"click" ~capture:false "b" in
      let listener_locs =
        List.filter_map
          (fun (a : Access.t) ->
            match a.Access.loc with
            | Location.Event_handler { slot = Location.Listener u; _ } -> Some u
            | _ -> None)
          (log ())
      in
      Alcotest.(check (list int)) "distinct listener cells" [ u1; u2 ] listener_locs)

let test_plan_phases () =
  with_registry (fun reg _log ->
      (* Path: root(1) -> mid(2) -> target(3). *)
      ignore (Events.add_listener reg ~target:1 ~event:"click" ~capture:true "cap-root");
      ignore (Events.add_listener reg ~target:1 ~event:"click" ~capture:false "bub-root");
      Events.set_inline reg ~target:3 ~event:"click" (Some "inline-target");
      ignore (Events.add_listener reg ~target:3 ~event:"click" ~capture:false "tgt-listener");
      ignore (Events.add_listener reg ~target:2 ~event:"click" ~capture:false "bub-mid");
      let plan = Events.plan reg ~path:[ 1; 2; 3 ] ~event:"click" ~bubbles:true in
      let names = List.map (fun s -> s.Events.callback) plan in
      Alcotest.(check (list string)) "phase order"
        [ "cap-root"; "inline-target"; "tgt-listener"; "bub-mid"; "bub-root" ]
        names;
      let phases = List.map (fun s -> Events.phase_name s.Events.phase) plan in
      Alcotest.(check (list string)) "phases"
        [ "capture"; "target"; "target"; "bubble"; "bubble" ]
        phases)

let test_plan_no_bubble () =
  with_registry (fun reg _log ->
      ignore (Events.add_listener reg ~target:1 ~event:"load" ~capture:false "root");
      Events.set_inline reg ~target:3 ~event:"load" (Some "tgt");
      let plan = Events.plan reg ~path:[ 1; 2; 3 ] ~event:"load" ~bubbles:false in
      Alcotest.(check (list string)) "no bubble steps" [ "tgt" ]
        (List.map (fun s -> s.Events.callback) plan))

let test_plan_empty () =
  with_registry (fun reg _log ->
      Alcotest.(check int) "no handlers, no steps" 0
        (List.length (Events.plan reg ~path:[ 1; 2 ] ~event:"click" ~bubbles:true)))

let test_dispatch_counting () =
  with_registry (fun reg _log ->
      Alcotest.(check int) "first index" 0 (Events.record_dispatch reg ~target:9 ~event:"click");
      Alcotest.(check int) "second index" 1 (Events.record_dispatch reg ~target:9 ~event:"click");
      Alcotest.(check int) "count" 2 (Events.dispatch_count reg ~target:9 ~event:"click");
      Alcotest.(check int) "other target" 0 (Events.dispatch_count reg ~target:8 ~event:"click"))

let test_remove_nonexistent_silent () =
  with_registry (fun reg log ->
      Events.remove_listener reg ~target:1 ~event:"click" ~uid:12345;
      Alcotest.(check int) "no accesses for no-op removal" 0 (List.length (log ())))

let suite =
  [
    Alcotest.test_case "inline slot" `Quick test_inline_slot;
    Alcotest.test_case "add/remove listener" `Quick test_add_remove_listener;
    Alcotest.test_case "disjoint listener locations" `Quick test_disjoint_listener_locations;
    Alcotest.test_case "plan phases" `Quick test_plan_phases;
    Alcotest.test_case "plan without bubbling" `Quick test_plan_no_bubble;
    Alcotest.test_case "plan empty" `Quick test_plan_empty;
    Alcotest.test_case "dispatch counting" `Quick test_dispatch_counting;
    Alcotest.test_case "remove nonexistent" `Quick test_remove_nonexistent_silent;
  ]
