(* Property-based tests across the stack:

   - MiniJS printer/parser round-trip on generated ASTs;
   - interpreter arithmetic vs a reference evaluator;
   - detector soundness (every reported pair really is CHC) and the
     full-track ⊇ last-access recall relation on random schedules;
   - event-plan phase ordering on random registrations. *)

open Wr_js
module Graph = Wr_hb.Graph
module Op = Wr_hb.Op
module Location = Wr_mem.Location
module Access = Wr_mem.Access

(* ------------------------------------------------------------------ *)
(* AST generator                                                       *)
(* ------------------------------------------------------------------ *)

let gen_ident =
  QCheck.Gen.(oneofl [ "a"; "b"; "foo"; "bar_1"; "x$"; "_tmp"; "value9" ])

let gen_number = QCheck.Gen.(map float_of_int (int_bound 10_000))

let gen_string_lit =
  QCheck.Gen.(string_size ~gen:(oneofl [ 'a'; 'z'; ' '; '\''; '"'; '\\'; '\n'; '<' ]) (int_bound 6))

let gen_binop =
  QCheck.Gen.oneofl
    Ast.[ Add; Sub; Mul; Div; Mod; Eq; Neq; Strict_eq; Strict_neq; Lt; Le; Gt; Ge; And; Or;
          Bit_and; Bit_or; Bit_xor; Shl; Shr; Ushr ]

let gen_unop = QCheck.Gen.oneofl Ast.[ Neg; Plus; Not; Bit_not; Typeof; Void ]

let rec gen_expr depth =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        map (fun n -> Ast.Number n) gen_number;
        map (fun s -> Ast.String s) gen_string_lit;
        map (fun b -> Ast.Bool b) bool;
        return Ast.Null;
        return Ast.This;
        map (fun v -> Ast.Ident v) gen_ident;
      ]
  in
  if depth = 0 then atom
  else
    let sub = gen_expr (depth - 1) in
    let lv = gen_lvalue (depth - 1) in
    frequency
      [
        (3, atom);
        (2, map3 (fun op a b -> Ast.Binop (op, a, b)) gen_binop sub sub);
        (1, map2 (fun op a -> Ast.Unop (op, a)) gen_unop sub);
        (1, map2 (fun a n -> Ast.Member (a, n)) sub gen_ident);
        (1, map2 (fun a k -> Ast.Index (a, k)) sub sub);
        (1, map2 (fun f args -> Ast.Call (f, args)) sub (list_size (int_bound 2) sub));
        (1, map2 (fun f args -> Ast.New (f, args)) sub (list_size (int_bound 2) sub));
        (1, map3 (fun c t f -> Ast.Cond (c, t, f)) sub sub sub);
        (1, map2 (fun l e -> Ast.Assign (l, e)) lv sub);
        (1, map2 (fun a b -> Ast.Comma (a, b)) sub sub);
        (1, map (fun es -> Ast.Array_lit es) (list_size (int_bound 3) sub));
        ( 1,
          map
            (fun kvs -> Ast.Object_lit kvs)
            (list_size (int_bound 2) (pair gen_ident sub)) );
        ( 1,
          map2
            (fun params body -> Ast.Func { fname = None; params; body })
            (list_size (int_bound 2) gen_ident)
            (gen_stmts (depth - 1)) );
        ( 1,
          map3
            (fun l op pos -> Ast.Update (l, op, pos))
            lv
            (oneofl Ast.[ Incr; Decr ])
            (oneofl Ast.[ Prefix; Postfix ]) );
      ]

and gen_lvalue depth =
  let open QCheck.Gen in
  if depth = 0 then map (fun v -> Ast.L_var v) gen_ident
  else
    oneof
      [
        map (fun v -> Ast.L_var v) gen_ident;
        map2 (fun e n -> Ast.L_member (e, n)) (gen_expr (depth - 1)) gen_ident;
        map2 (fun e k -> Ast.L_index (e, k)) (gen_expr (depth - 1)) (gen_expr (depth - 1));
      ]

and gen_stmt depth =
  let open QCheck.Gen in
  let sub_e = gen_expr depth in
  if depth = 0 then map (fun e -> Ast.Expr_stmt e) sub_e
  else
    (* Construct recursive sub-generators only on this branch: building
       them before the depth check would recurse forever. *)
    let body = gen_stmts (depth - 1) in
    frequency
      [
        (3, map (fun e -> Ast.Expr_stmt e) sub_e);
        ( 2,
          map
            (fun decls -> Ast.Var_decl decls)
            (list_size (int_range 1 2) (pair gen_ident (opt sub_e))) );
        (1, map3 (fun c t f -> Ast.If (c, t, f)) sub_e body body);
        (1, map2 (fun c b -> Ast.While (c, b)) sub_e body);
        (1, map2 (fun b c -> Ast.Do_while (b, c)) body sub_e);
        (1, map (fun e -> Ast.Return e) (opt sub_e));
        (1, return Ast.Break);
        (1, return Ast.Continue);
        (1, map (fun e -> Ast.Throw e) sub_e);
        (1, map (fun b -> Ast.Block b) body);
        ( 1,
          map3
            (fun name params b -> Ast.Func_decl { fname = Some name; params; body = b })
            gen_ident
            (list_size (int_bound 2) gen_ident)
            body );
        ( 1,
          map2
            (fun (name, cb) b -> Ast.Try (b, Some (name, cb), None))
            (pair gen_ident body) body );
        (1, map2 (fun (k, e) b -> Ast.For_in (k, e, b)) (pair gen_ident sub_e) body);
      ]

and gen_stmts depth = QCheck.Gen.(list_size (int_bound 3) (gen_stmt depth))

let gen_program = QCheck.Gen.(list_size (int_range 1 5) (gen_stmt 3))

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"minijs: parse (print ast) = ast" ~count:500
    (QCheck.make ~print:Pretty.program_to_string gen_program) (fun prog ->
      let printed = Pretty.program_to_string prog in
      match Parser.parse printed with
      | reparsed -> reparsed = prog
      | exception _ -> false)

(* ------------------------------------------------------------------ *)
(* Arithmetic vs reference evaluator                                   *)
(* ------------------------------------------------------------------ *)

type arith = Num of float | Bin of Ast.binop * arith * arith | Neg_a of arith

let rec arith_to_expr = function
  | Num n -> Ast.Number n
  | Bin (op, a, b) -> Ast.Binop (op, arith_to_expr a, arith_to_expr b)
  | Neg_a a -> Ast.Unop (Ast.Neg, arith_to_expr a)

let rec arith_eval = function
  | Num n -> n
  | Neg_a a -> -.arith_eval a
  | Bin (op, a, b) -> (
      let x = arith_eval a and y = arith_eval b in
      match op with
      | Ast.Add -> x +. y
      | Ast.Sub -> x -. y
      | Ast.Mul -> x *. y
      | Ast.Div -> x /. y
      | Ast.Mod -> Float.rem x y
      | _ -> assert false)

let gen_arith =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then map (fun n -> Num (float_of_int n)) (int_range (-50) 50)
    else
      frequency
        [
          (2, map (fun n -> Num (float_of_int n)) (int_range (-50) 50));
          ( 3,
            map3
              (fun op a b -> Bin (op, a, b))
              (oneofl Ast.[ Add; Sub; Mul; Div; Mod ])
              (go (depth - 1)) (go (depth - 1)) );
          (1, map (fun a -> Neg_a a) (go (depth - 1)));
        ]
  in
  go 4

let prop_arithmetic_reference =
  QCheck.Test.make ~name:"minijs: arithmetic matches reference" ~count:500
    (QCheck.make gen_arith) (fun a ->
      let vm = Interp.create ~sink:ignore () in
      let prog = [ Ast.Var_decl [ ("r", Some (arith_to_expr a)) ] ] in
      Interp.run_in_global vm prog;
      match Hashtbl.find_opt vm.Value.global.Value.vars "r" with
      | Some { contents = Value.Number got } ->
          let expected = arith_eval a in
          (Float.is_nan got && Float.is_nan expected) || got = expected
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Detector properties on random schedules                             *)
(* ------------------------------------------------------------------ *)

(* A random "execution": a DAG over n ops plus a sequence of accesses in
   op-id order (accesses by an op happen when it runs; running order is a
   topological order, and ascending op id is one). *)
let gen_execution =
  let open QCheck.Gen in
  int_range 3 12 >>= fun n ->
  list_size (int_bound (2 * n)) (pair (int_bound (n - 1)) (int_bound (n - 1))) >>= fun edges ->
  list_size (int_range 1 25)
    (triple (int_bound (n - 1)) (int_bound 4) bool)
  >|= fun accesses -> (n, edges, accesses)

let build_execution (n, edges, accesses) =
  let g = Graph.create () in
  for i = 0 to n - 1 do
    ignore (Graph.fresh g Op.Script ~label:(string_of_int i))
  done;
  List.iter (fun (a, b) -> if a < b then Graph.add_edge g a b else if b < a then Graph.add_edge g b a) edges;
  (* Deliver accesses in ascending op order (a valid schedule). *)
  let sorted = List.stable_sort (fun (o1, _, _) (o2, _, _) -> compare o1 o2) accesses in
  let feed (d : Wr_detect.Detector.t) =
    List.iter
      (fun (op, cell, is_write) ->
        let loc = Location.Js_var { cell; name = "v" ^ string_of_int cell } in
        d.Wr_detect.Detector.record
          (Access.make loc (if is_write then `Write else `Read) op))
      sorted
  in
  (g, feed)

let prop_reported_races_are_chc =
  QCheck.Test.make ~name:"detector: reported pairs are concurrent" ~count:300
    (QCheck.make gen_execution) (fun exec ->
      let g, feed = build_execution exec in
      let d = Wr_detect.Last_access.create g in
      feed d;
      List.for_all
        (fun (r : Wr_detect.Race.t) ->
          Graph.chc g r.Wr_detect.Race.first.Access.op r.Wr_detect.Race.second.Access.op)
        (d.Wr_detect.Detector.races ()))

let prop_full_track_recall =
  QCheck.Test.make ~name:"detector: full-track finds >= last-access" ~count:300
    (QCheck.make gen_execution) (fun exec ->
      let g1, feed1 = build_execution exec in
      let d1 = Wr_detect.Last_access.create g1 in
      feed1 d1;
      let g2, feed2 = build_execution exec in
      let d2 = Wr_detect.Full_track.create g2 in
      feed2 d2;
      List.length (d2.Wr_detect.Detector.races ())
      >= List.length (d1.Wr_detect.Detector.races ()))

(* ------------------------------------------------------------------ *)
(* Event plan phase ordering                                           *)
(* ------------------------------------------------------------------ *)

let phase_rank = function
  | Wr_events.Events.Capture -> 0
  | Wr_events.Events.At_target -> 1
  | Wr_events.Events.Bubble -> 2

let gen_registrations =
  (* Registrations over a 3-node path: (node in 0..2, capture?). *)
  QCheck.Gen.(list_size (int_bound 8) (pair (int_bound 2) bool))

let prop_plan_phase_order =
  QCheck.Test.make ~name:"events: plan is capture, target, bubble" ~count:300
    (QCheck.make gen_registrations) (fun regs ->
      let reg : int Wr_events.Events.t = Wr_events.Events.create (Wr_mem.Instr.null ()) in
      List.iteri
        (fun i (node, capture) ->
          ignore (Wr_events.Events.add_listener reg ~target:node ~event:"click" ~capture i))
        regs;
      let plan = Wr_events.Events.plan reg ~path:[ 0; 1; 2 ] ~event:"click" ~bubbles:true in
      let ranks = List.map (fun s -> phase_rank s.Wr_events.Events.phase) plan in
      List.sort compare ranks = ranks
      &&
      (* Capture walks down (0 then 1), bubble walks up (1 then 0). *)
      let capture_nodes =
        List.filter_map
          (fun (s : int Wr_events.Events.step) ->
            if s.Wr_events.Events.phase = Wr_events.Events.Capture then
              Some s.Wr_events.Events.current_target
            else None)
          plan
      in
      let bubble_nodes =
        List.filter_map
          (fun (s : int Wr_events.Events.step) ->
            if s.Wr_events.Events.phase = Wr_events.Events.Bubble then
              Some s.Wr_events.Events.current_target
            else None)
          plan
      in
      List.sort compare capture_nodes = capture_nodes
      && List.sort (fun a b -> compare b a) bubble_nodes = bubble_nodes)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_arithmetic_reference;
    QCheck_alcotest.to_alcotest prop_reported_races_are_chc;
    QCheck_alcotest.to_alcotest prop_full_track_recall;
    QCheck_alcotest.to_alcotest prop_plan_phase_order;
  ]

(* ------------------------------------------------------------------ *)
(* Robustness fuzz: malformed input must never escape as exceptions    *)
(* ------------------------------------------------------------------ *)

let gen_tag_soup =
  (* Strings biased toward markup characters to stress the HTML parser. *)
  QCheck.Gen.(
    string_size ~gen:(oneofl [ '<'; '>'; '/'; '"'; '\''; '='; '!'; '-'; 'a'; 'b'; ' '; '\n' ])
      (int_bound 60))

let prop_html_parse_total =
  QCheck.Test.make ~name:"html: parse is total on tag soup" ~count:500
    (QCheck.make ~print:(Printf.sprintf "%S") gen_tag_soup) (fun soup ->
      match Wr_html.Html.parse soup with
      | _ -> true
      | exception _ -> false)

let prop_analyze_total_on_soup =
  QCheck.Test.make ~name:"webracer: analyze is total on tag soup" ~count:60
    (QCheck.make ~print:(Printf.sprintf "%S") gen_tag_soup) (fun soup ->
      match Webracer.analyze (Webracer.config ~page:soup ~explore:true ()) with
      | _ -> true
      | exception _ -> false)

let gen_script_soup =
  (* Script bodies built from JS-ish fragments: crashes must be swallowed
     by the browser, never escape the analyzer. *)
  QCheck.Gen.(
    list_size (int_bound 6)
      (oneofl
         [
           "x = x + 1;"; "var y = missing();"; "document.getElementById(\"nope\").value = 1;";
           "setTimeout(function () { z = 1; }, 5);"; "throw new Error(\"boom\");";
           "for (;;) { break; }"; "({)"; "if (x"; "document.write(\"<p>w</p>\");";
           "JSON.parse(\"{bad\");"; "new XMLHttpRequest().send();";
         ])
    >|= String.concat "\n")

let prop_analyze_total_on_script_soup =
  QCheck.Test.make ~name:"webracer: analyze survives crashing scripts" ~count:80
    (QCheck.make ~print:(Printf.sprintf "%S") gen_script_soup) (fun body ->
      let page = "<div id=\"d\">x</div><script>" ^ body ^ "</script>" in
      match Webracer.analyze (Webracer.config ~page ~explore:true ()) with
      | _ -> true
      | exception _ -> false)

let fuzz_suite =
  [
    QCheck_alcotest.to_alcotest prop_html_parse_total;
    QCheck_alcotest.to_alcotest prop_analyze_total_on_soup;
    QCheck_alcotest.to_alcotest prop_analyze_total_on_script_soup;
  ]

let suite = suite @ fuzz_suite

let prop_analyze_total_on_generated_programs =
  QCheck.Test.make ~name:"webracer: analyze survives arbitrary generated programs" ~count:60
    (QCheck.make ~print:Pretty.program_to_string gen_program) (fun prog ->
      (* Whatever a syntactically valid program does — throw, loop into the
         fuel limit, mangle the DOM — analysis completes and reports. *)
      let page = "<div id=\"host\">x</div><script>" ^ Pretty.program_to_string prog ^ "</script>" in
      let cfg =
        { (Webracer.config ~page ~explore:true ()) with Webracer.Config.fuel = 100_000 }
      in
      match Webracer.analyze cfg with
      | report -> report.Webracer.ops > 0
      | exception _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_analyze_total_on_generated_programs ]
