(* The site album: full-page integration scenarios that exercise the whole
   stack at once — parser, interpreter (incl. regex and JSON), DOM, events,
   timers, XHR, storage — each with an exact expected race inventory. *)

module Race = Wr_detect.Race
module Location = Wr_mem.Location

let analyze ?(explore = true) ?(resources = []) ?(seed = 2) page =
  Webracer.analyze (Webracer.config ~page ~resources ~seed ~explore ())

let counts r = Webracer.count_by_type r.Webracer.races

let console_contains (r : Webracer.report) needle =
  List.exists
    (fun line ->
      let n = String.length needle and h = String.length line in
      let rec go i = i + n <= h && (String.sub line i n = needle || go (i + 1)) in
      go 0)
    r.Webracer.console

(* --- 1. News portal ---------------------------------------------------- *)

(* A headline rotator (interval, self-clearing), a delayed "personalize"
   script that polls for the layout sentinel (Ford-style; benign HTML
   races), and a weather widget loaded async that races page code on a
   shared global. *)
let news_portal () =
  let page =
    {|<div id="masthead"><h1>The Daily Build</h1></div>
<div id="headline">loading...</div>
<script>
var stories = ["Compiler ships", "Tests pass", "Bench is green"];
var at = 0;
var spins = 0;
var rotator = setInterval(function () {
  at = (at + 1) % stories.length;
  document.getElementById("headline").textContent = stories[at];
  spins = spins + 1;
  if (spins > 6) { clearInterval(rotator); }
}, 15);
function personalize() {
  if (document.getElementById("layout-ready") != null) {
    var slots = document.getElementsByTagName("p");
    greetingDone = 1;
  } else { setTimeout(personalize, 25); }
}
setTimeout(personalize, 1);
</script>
<script async="true" src="weather.js"></script>
<script>units = "C";</script>
<p>story one</p>
<p>story two</p>
<div id="layout-ready"></div>|}
  in
  let resources = [ ("weather.js", "units = \"F\"; forecast = \"rain\";") ] in
  analyze ~resources page

let test_news_portal () =
  let r = news_portal () in
  let html, func, var, disp = counts r in
  (* The personalize poll races with the sentinel parse (benign HTML), the
     async weather script races page code on `units` (variable); the
     rotator and masthead are race-free. *)
  Alcotest.(check bool) "benign HTML poll races" true (html >= 1);
  Alcotest.(check int) "weather units race" 1 var;
  Alcotest.(check int) "no function races" 0 func;
  Alcotest.(check int) "no dispatch races" 0 disp;
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes);
  (* The headline rotator really rotated. *)
  Alcotest.(check bool) "rotator ran" true (r.Webracer.ops > 10)

(* --- 2. Storefront ------------------------------------------------------ *)

(* A cart in localStorage written by both the page and an AJAX "restore
   cart" handler (storage race), a search box with a hint script (the
   Southwest bug), and regex-validated promo codes (race-free). *)
let storefront () =
  let page =
    {|<input type="text" id="search" />
<input type="text" id="promo" />
<div id="cart-count">0</div>
<script>
document.getElementById("search").value = "Search products...";
function validatePromo(code) {
  return /^[A-Z]{3}-\d{4}$/.test(code);
}
promoOk = validatePromo("SAVE-2024") ? "yes" : "no";
console.log("promo " + promoOk);
var restore = new XMLHttpRequest();
restore.onreadystatechange = function () {
  if (restore.readyState === 4) {
    var saved = JSON.parse(restore.responseText);
    localStorage.setItem("cart", "" + saved.items);
    document.getElementById("cart-count").textContent = "" + saved.items;
  }
};
restore.open("GET", "cart.json");
restore.send();
setTimeout(function () { localStorage.setItem("cart", "0"); }, 8);
</script>|}
  in
  analyze ~resources:[ ("cart.json", {|{"items": 3}|}) ] page

let test_storefront () =
  let r = storefront () in
  let races_on name =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Js_var { name = n; _ } -> n = name
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check int) "cart storage race" 1 (List.length (races_on "cart"));
  Alcotest.(check bool) "search hint race (form)" true (List.length (races_on "value") >= 1);
  Alcotest.(check bool) "promo regex validated" true (console_contains r "promo no");
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes)

(* --- 3. Login page ------------------------------------------------------ *)

(* Email validation on blur, a submit link driven by a function in a
   late-loading script (harmful function race), and a remember-me checkbox
   read at load. *)
let login_page () =
  let page =
    {|<input type="text" id="email" onblur="checkEmail();" />
<input type="checkbox" id="remember" checked="true" />
<a href="javascript:submitLogin()">Sign in</a>
<script src="auth.js"></script>
<script>
function checkEmail() {
  var v = document.getElementById("email").value;
  emailOk = /\w+@\w+\.\w+/.test(v);
}
var remembered = document.getElementById("remember").checked;
console.log("remember " + remembered);
</script>|}
  in
  analyze
    ~resources:[ ("auth.js", "function submitLogin() { submitted = 1; }") ]
    page

let test_login_page () =
  let r = login_page () in
  let _, func, _, _ = counts r in
  (* Two function races: submitLogin (the link can be clicked before
     auth.js loads) and checkEmail (blur can fire before the inline script
     that declares it — its handler was registered at parse time). *)
  Alcotest.(check int) "function races" 2 func;
  let on_submit =
    List.exists
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Js_var { name = "submitLogin"; _ } -> true
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check bool) "one is submitLogin" true on_submit;
  Alcotest.(check bool) "checkbox read" true (console_contains r "remember true");
  Alcotest.(check int) "no crashes in this schedule" 0 (List.length r.Webracer.crashes)

(* --- 4. Ad-laden page ---------------------------------------------------- *)

(* Two ad iframes sharing a frequency-cap global with the host page
   (cross-frame variable races, Fig. 1 at scale) and a Gomez-style tracker
   racing image loads. *)
let ad_page () =
  let page =
    {|<script>adImpressions = 0;</script>
<img id="hero" src="hero.png">
<iframe src="ad1.html"></iframe>
<iframe src="ad2.html"></iframe>
<script>
var trackTicks = 0;
var tracker = setInterval(function () {
  trackTicks = trackTicks + 1;
  if (trackTicks > 20) { clearInterval(tracker); return 0; }
  var imgs = document.images;
  var i = 0;
  for (i = 0; i < imgs.length; i++) {
    if (!imgs[i].__tracked) { imgs[i].__tracked = true; imgs[i].onload = function () { return 1; }; }
  }
}, 10);
</script>|}
  in
  let ad n =
    Printf.sprintf
      "<script>adImpressions = adImpressions + 1; console.log(\"ad%d saw \" + adImpressions);</script>"
      n
  in
  analyze
    ~resources:[ ("hero.png", "png"); ("ad1.html", ad 1); ("ad2.html", ad 2) ]
    page

let test_ad_page () =
  let r = ad_page () in
  let _, _, var, disp = counts r in
  (* The two ad frames race each other on adImpressions (the host's write
     is ordered before both); the tracker races the hero image's load. *)
  Alcotest.(check int) "frequency-cap race" 1 var;
  Alcotest.(check bool) "tracker dispatch race" true (disp >= 1);
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes)

(* --- 5. The album is deterministic -------------------------------------- *)

let test_album_deterministic () =
  let snapshot build =
    let r = build () in
    (counts r, List.length r.Webracer.filtered, r.Webracer.ops)
  in
  List.iter
    (fun build ->
      Alcotest.(check bool) "same outcome twice" true (snapshot build = snapshot build))
    [ news_portal; storefront; login_page; ad_page ]

let suite =
  [
    Alcotest.test_case "news portal" `Quick test_news_portal;
    Alcotest.test_case "storefront" `Quick test_storefront;
    Alcotest.test_case "login page" `Quick test_login_page;
    Alcotest.test_case "ad-laden page" `Quick test_ad_page;
    Alcotest.test_case "album determinism" `Quick test_album_deterministic;
  ]
