(* Unit tests for the instrumented DOM. *)

open Wr_dom
module Location = Wr_mem.Location
module Access = Wr_mem.Access

let with_doc f =
  let log = ref [] in
  let base = Wr_mem.Instr.null () in
  let instr = { base with Wr_mem.Instr.sink = (fun a -> log := a :: !log) } in
  let doc = Dom.create_document instr ~url:"http://example.test/" in
  f doc (fun () -> List.rev !log)

let elem doc ?(attrs = []) tag = Dom.create_element doc ~tag ~attrs

let test_append_and_query () =
  with_doc (fun doc _log ->
      let div = elem doc ~attrs:[ ("id", "a") ] "div" in
      Dom.append doc ~parent:(Dom.root doc) ~child:div;
      (match Dom.get_element_by_id doc "a" with
      | Some n -> Alcotest.(check string) "found" "div" n.Dom.tag
      | None -> Alcotest.fail "id lookup failed");
      Alcotest.(check bool) "attached" true (Dom.is_attached doc div))

let test_miss_read_flags () =
  with_doc (fun doc log ->
      (match Dom.get_element_by_id doc "nope" with
      | None -> ()
      | Some _ -> Alcotest.fail "phantom element");
      match log () with
      | [ a ] ->
          Alcotest.(check bool) "miss flag" true (Access.has_flag a Access.Observed_miss);
          (match a.Access.loc with
          | Location.Html_elem (Location.Id { id = "nope"; _ }) -> ()
          | _ -> Alcotest.fail "wrong location")
      | l -> Alcotest.failf "expected 1 access, got %d" (List.length l))

let test_miss_then_insert_same_location () =
  with_doc (fun doc log ->
      ignore (Dom.get_element_by_id doc "dw");
      let dw = elem doc ~attrs:[ ("id", "dw") ] "div" in
      Dom.append doc ~parent:(Dom.root doc) ~child:dw;
      let id_accesses =
        List.filter
          (fun (a : Access.t) ->
            match a.Access.loc with
            | Location.Html_elem (Location.Id { id = "dw"; _ }) -> true
            | _ -> false)
          (log ())
      in
      match id_accesses with
      | [ read; write ] ->
          Alcotest.(check bool) "read first" true (read.Access.kind = `Read);
          Alcotest.(check bool) "then write" true (write.Access.kind = `Write);
          Alcotest.(check bool) "same location" true
            (Location.equal read.Access.loc write.Access.loc)
      | l -> Alcotest.failf "expected read+write on id cell, got %d accesses" (List.length l))

let test_subtree_insertion_writes_descendants () =
  with_doc (fun doc log ->
      let parent = elem doc "div" in
      let child = elem doc ~attrs:[ ("id", "inner") ] "span" in
      Dom.append doc ~parent ~child;
      (* Detached insertion emits no presence writes... *)
      let presence_writes l =
        List.filter
          (fun (a : Access.t) ->
            a.Access.kind = `Write
            && match a.Access.loc with Location.Html_elem _ -> true | _ -> false)
          l
      in
      Alcotest.(check int) "no presence writes while detached" 0
        (List.length (presence_writes (log ())));
      (* ...but attaching the subtree root writes every descendant. *)
      Dom.append doc ~parent:(Dom.root doc) ~child:parent;
      let widened = presence_writes (log ()) in
      Alcotest.(check bool) "descendant id indexed" true
        (Dom.get_element_by_id doc "inner" <> None);
      Alcotest.(check bool) "writes for both elements" true (List.length widened >= 2))

let test_remove_unindexes () =
  with_doc (fun doc _log ->
      let div = elem doc ~attrs:[ ("id", "x") ] "div" in
      Dom.append doc ~parent:(Dom.root doc) ~child:div;
      Dom.remove doc div;
      Alcotest.(check bool) "gone" true (Dom.get_element_by_id doc "x" = None);
      Alcotest.(check bool) "detached" false (Dom.is_attached doc div))

let test_insert_before_order () =
  with_doc (fun doc _log ->
      let a = elem doc "a" and b = elem doc "b" and c = elem doc "c" in
      Dom.append doc ~parent:(Dom.root doc) ~child:a;
      Dom.append doc ~parent:(Dom.root doc) ~child:c;
      Dom.insert_before doc ~parent:(Dom.root doc) ~child:b ~before:c;
      let tags = List.map (fun n -> n.Dom.tag) (Dom.document_order doc) in
      Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] tags)

let test_cycle_rejected () =
  with_doc (fun doc _log ->
      let a = elem doc "a" and b = elem doc "b" in
      Dom.append doc ~parent:a ~child:b;
      match Dom.append doc ~parent:b ~child:a with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "cycle accepted")

let test_double_parent_rejected () =
  with_doc (fun doc _log ->
      let a = elem doc "a" and b = elem doc "b" and c = elem doc "c" in
      Dom.append doc ~parent:a ~child:c;
      match Dom.append doc ~parent:b ~child:c with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "node attached twice")

let test_collections () =
  with_doc (fun doc _log ->
      let img = elem doc ~attrs:[ ("src", "i.png") ] "img" in
      let form = elem doc "form" in
      let link = elem doc ~attrs:[ ("href", "#") ] "a" in
      let plain_a = elem doc "a" in
      List.iter
        (fun child -> Dom.append doc ~parent:(Dom.root doc) ~child)
        [ img; form; link; plain_a ];
      Alcotest.(check int) "images" 1 (List.length (Dom.collection doc "images"));
      Alcotest.(check int) "forms" 1 (List.length (Dom.collection doc "forms"));
      Alcotest.(check int) "links (href only)" 1 (List.length (Dom.collection doc "links"));
      Alcotest.(check int) "tag name" 2 (List.length (Dom.get_elements_by_tag_name doc "a")))

let test_idl_form_field_flag () =
  with_doc (fun doc log ->
      let input = elem doc ~attrs:[ ("type", "text") ] "input" in
      Dom.append doc ~parent:(Dom.root doc) ~child:input;
      Dom.set_idl doc input "value" "hello";
      ignore (Dom.get_idl doc input "value");
      let flagged =
        List.filter (fun a -> Access.has_flag a Access.Form_field) (log ())
      in
      Alcotest.(check int) "both idl accesses flagged" 2 (List.length flagged))

let test_idl_reflects_attr () =
  with_doc (fun doc _log ->
      let input = elem doc ~attrs:[ ("value", "init") ] "input" in
      Dom.append doc ~parent:(Dom.root doc) ~child:input;
      Alcotest.(check (option string)) "initial from attr" (Some "init")
        (Dom.get_idl doc input "value");
      Dom.set_idl doc input "value" "typed";
      Alcotest.(check (option string)) "idl wins" (Some "typed")
        (Dom.get_idl doc input "value"))

let test_set_attr_id_moves_index () =
  with_doc (fun doc _log ->
      let div = elem doc ~attrs:[ ("id", "old") ] "div" in
      Dom.append doc ~parent:(Dom.root doc) ~child:div;
      Dom.set_attr doc div "id" "new";
      Alcotest.(check bool) "old gone" true (Dom.get_element_by_id doc "old" = None);
      Alcotest.(check bool) "new present" true (Dom.get_element_by_id doc "new" <> None))

let test_duplicate_id_first_wins () =
  with_doc (fun doc _log ->
      let a = elem doc ~attrs:[ ("id", "dup") ] "div" in
      let b = elem doc ~attrs:[ ("id", "dup") ] "span" in
      Dom.append doc ~parent:(Dom.root doc) ~child:a;
      Dom.append doc ~parent:(Dom.root doc) ~child:b;
      match Dom.get_element_by_id doc "dup" with
      | Some n -> Alcotest.(check string) "first wins" "div" n.Dom.tag
      | None -> Alcotest.fail "lookup failed")

let suite =
  [
    Alcotest.test_case "append and query" `Quick test_append_and_query;
    Alcotest.test_case "miss read flags" `Quick test_miss_read_flags;
    Alcotest.test_case "miss/insert same location" `Quick test_miss_then_insert_same_location;
    Alcotest.test_case "subtree insertion" `Quick test_subtree_insertion_writes_descendants;
    Alcotest.test_case "remove unindexes" `Quick test_remove_unindexes;
    Alcotest.test_case "insert_before order" `Quick test_insert_before_order;
    Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
    Alcotest.test_case "double parent rejected" `Quick test_double_parent_rejected;
    Alcotest.test_case "collections" `Quick test_collections;
    Alcotest.test_case "idl form-field flag" `Quick test_idl_form_field_flag;
    Alcotest.test_case "idl reflects attr" `Quick test_idl_reflects_attr;
    Alcotest.test_case "set_attr id reindex" `Quick test_set_attr_id_moves_index;
    Alcotest.test_case "duplicate id" `Quick test_duplicate_id_first_wins;
  ]
