(* Second wave of browser integration tests: dynamic DOM mutation, innerHTML,
   XHR + JSON round trips, removal races, and iframe nesting depth. *)

module Race = Wr_detect.Race
module Location = Wr_mem.Location

let analyze ?(explore = false) ?(resources = []) ?(seed = 1) page =
  Webracer.analyze (Webracer.config ~page ~resources ~seed ~explore ())

let read_global (r : Webracer.report) = ignore r

let console_contains (r : Webracer.report) needle =
  List.exists
    (fun line ->
      let n = String.length needle and h = String.length line in
      let rec go i = i + n <= h && (String.sub line i n = needle || go (i + 1)) in
      go 0)
    r.Webracer.console

let test_xhr_json_innerhtml_pipeline () =
  let page =
    {|<div id="out">pending</div>
<script>
var r = new XMLHttpRequest();
r.onreadystatechange = function () {
  if (r.readyState === 4) {
    var cfg = JSON.parse(r.responseText);
    document.getElementById("out").innerHTML = "<b>" + cfg.message + "</b>";
    console.log("decorated: " + document.getElementById("out").innerHTML);
  }
};
r.open("GET", "cfg.json");
r.send();
</script>|}
  in
  let r = analyze ~resources:[ ("cfg.json", {|{"message": "hello"}|}) ] page in
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes);
  Alcotest.(check bool) "xhr -> json -> innerHTML worked" true
    (console_contains r "decorated: <b>hello</b>")

let test_inner_html_scripts_do_not_run () =
  let page =
    {|<div id="c">x</div>
<script>
document.getElementById("c").innerHTML = "<script>evil = 1;</scr" + "ipt><p>ok</p>";
marker = typeof evil;
console.log("marker " + marker);
</script>|}
  in
  let r = analyze page in
  Alcotest.(check bool) "inserted script did not execute" true
    (console_contains r "marker undefined")

let test_dynamic_insert_then_lookup_race () =
  (* A timer inserts a node; another unordered timer looks it up: races on
     the id cell either way around. *)
  let page =
    {|<div id="host">x</div>
<script>
setTimeout(function () {
  var n = document.createElement("div");
  n.id = "late";
  document.getElementById("host").appendChild(n);
}, 10);
setTimeout(function () { var probe = document.getElementById("late"); }, 11);
</script>|}
  in
  let r = analyze page in
  let html_races =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Html_elem (Location.Id { id = "late"; _ }) -> true
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check int) "insert/lookup race" 1 (List.length html_races)

let test_removal_race () =
  (* One timer removes a node, another reads it — unordered: a race on the
     node's id cell (removal writes it). *)
  let page =
    {|<div id="victim">x</div>
<script>
setTimeout(function () {
  var v = document.getElementById("victim");
  if (v != null) { v.parentNode.removeChild(v); }
}, 10);
setTimeout(function () { var w = document.getElementById("victim"); }, 12);
</script>|}
  in
  let r = analyze page in
  let races_on_victim =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Html_elem (Location.Id { id = "victim"; _ }) -> true
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check bool) "removal races with lookup" true (races_on_victim <> [])

let test_nested_iframes () =
  let page = {|<script>depth = 0;</script><iframe src="l1.html"></iframe>|} in
  let resources =
    [
      ("l1.html", {|<script>depth = depth + 1;</script><iframe src="l2.html"></iframe>|});
      ("l2.html", {|<script>depth = depth + 1; console.log("depth " + depth);</script>|});
    ]
  in
  let r = analyze ~resources page in
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes);
  Alcotest.(check bool) "nested frame ran last" true (console_contains r "depth 2")

let test_get_elements_by_tag_name_race () =
  (* A timer enumerates divs while an unordered timer inserts one: the
     collection read races with the insertion's collection write. *)
  let page =
    {|<div id="host">x</div>
<script>
setTimeout(function () { var n = document.getElementsByTagName("div").length; }, 10);
setTimeout(function () {
  document.getElementById("host").appendChild(document.createElement("div"));
}, 11);
</script>|}
  in
  let r = analyze page in
  let collection_races =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Html_elem (Location.Collection { name = "tag:div"; _ }) -> true
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check int) "collection race" 1 (List.length collection_races)

let test_set_attribute_vs_lookup () =
  (* Changing an id dynamically re-keys the index and races with lookups. *)
  let page =
    {|<div id="old">x</div>
<script>
setTimeout(function () { document.getElementById("old").setAttribute("id", "new"); }, 10);
setTimeout(function () { var p = document.getElementById("new"); }, 11);
</script>|}
  in
  let r = analyze page in
  let races_on_new =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Html_elem (Location.Id { id = "new"; _ }) -> true
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check int) "id-change race" 1 (List.length races_on_new)

let test_document_write_during_parse_ok () =
  let page = {|<script>document.write("<div>written</div>"); after = 1;</script>|} in
  let r = analyze page in
  (* Parser-driven document.write is supported: no warning. *)
  Alcotest.(check int) "no warnings" 0 (List.length r.Webracer.crashes);
  Alcotest.(check bool) "script continued" true (r.Webracer.accesses > 0);
  read_global r

let test_window_global_unification () =
  let page =
    {|<script>window.configured = 41;
var r = configured + 1;
console.log("r " + r);
window.onresize = function () { return 1; };</script>|}
  in
  let r = analyze page in
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes);
  Alcotest.(check bool) "window.x visible as global" true (console_contains r "r 42")

let test_style_and_computed_style () =
  let page =
    {|<div id="box" style="display: none; color: red"></div>
<script>
var box = document.getElementById("box");
console.log("display " + box.style.display);
box.style.display = "block";
console.log("now " + getComputedStyle(box).display);
</script>|}
  in
  let r = analyze page in
  Alcotest.(check bool) "style parsed from attribute" true (console_contains r "display none");
  Alcotest.(check bool) "style write visible" true (console_contains r "now block")

let suite =
  [
    Alcotest.test_case "xhr + JSON + innerHTML" `Quick test_xhr_json_innerhtml_pipeline;
    Alcotest.test_case "innerHTML scripts inert" `Quick test_inner_html_scripts_do_not_run;
    Alcotest.test_case "dynamic insert/lookup race" `Quick test_dynamic_insert_then_lookup_race;
    Alcotest.test_case "removal race" `Quick test_removal_race;
    Alcotest.test_case "nested iframes" `Quick test_nested_iframes;
    Alcotest.test_case "collection race" `Quick test_get_elements_by_tag_name_race;
    Alcotest.test_case "setAttribute id race" `Quick test_set_attribute_vs_lookup;
    Alcotest.test_case "document.write in parse" `Quick test_document_write_during_parse_ok;
    Alcotest.test_case "window/global unification" `Quick test_window_global_unification;
    Alcotest.test_case "style objects" `Quick test_style_and_computed_style;
  ]

(* --- selectors & text ------------------------------------------------ *)

let test_query_selector () =
  let page =
    {|<div class="card hot" id="c1">one</div>
<div class="card" id="c2">two</div>
<p class="hot">three</p>
<script>
console.log("byid " + document.querySelector("#c2").id);
console.log("bytag " + document.querySelectorAll("div").length);
console.log("byclass " + document.querySelectorAll(".hot").length);
console.log("combo " + document.querySelectorAll("div.card").length);
console.log("classlist " + document.getElementsByClassName("card").length);
console.log("miss " + (document.querySelector("#nope") === null));
</script>|}
  in
  let r = analyze page in
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes);
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (console_contains r needle))
    [ "byid c2"; "bytag 2"; "byclass 2"; "combo 2"; "classlist 2"; "miss true" ]

let test_query_selector_race () =
  (* querySelectorAll by class races with an unordered insertion matching
     the same class. *)
  let page =
    {|<div id="host"></div>
<script>
setTimeout(function () { var n = document.querySelectorAll(".widget").length; }, 10);
setTimeout(function () {
  var w = document.createElement("div");
  w.className = "widget";
  document.getElementById("host").appendChild(w);
}, 11);
</script>|}
  in
  let r = analyze page in
  let q_races =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Html_elem (Location.Collection { name; _ }) -> name = "class:widget"
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check int) "selector race" 1 (List.length q_races)

let test_text_content () =
  let page =
    {|<div id="t"><b>bold</b> and plain</div>
<script>
console.log("read [" + document.getElementById("t").textContent + "]");
document.getElementById("t").textContent = "replaced";
console.log("children " + document.getElementById("t").childNodes.length);
console.log("now [" + document.getElementById("t").textContent + "]");
</script>|}
  in
  let r = analyze page in
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes);
  Alcotest.(check bool) "read" true (console_contains r "read [bold and plain]");
  Alcotest.(check bool) "write" true (console_contains r "now [replaced]");
  Alcotest.(check bool) "children cleared" true (console_contains r "children 0")

let test_uri_builtins () =
  let page =
    {|<script>
var enc = encodeURIComponent("a b&c=d");
console.log("enc " + enc);
console.log("dec " + decodeURIComponent(enc));
console.log("fin " + isFinite(1 / 0) + isFinite(3));
</script>|}
  in
  let r = analyze page in
  Alcotest.(check bool) "encode" true (console_contains r "enc a%20b%26c%3Dd");
  Alcotest.(check bool) "decode" true (console_contains r "dec a b&c=d");
  Alcotest.(check bool) "isFinite" true (console_contains r "fin falsetrue")

let extra_suite =
  [
    Alcotest.test_case "querySelector family" `Quick test_query_selector;
    Alcotest.test_case "querySelector race" `Quick test_query_selector_race;
    Alcotest.test_case "textContent" `Quick test_text_content;
    Alcotest.test_case "uri builtins" `Quick test_uri_builtins;
  ]

let suite = suite @ extra_suite

(* --- stopPropagation / preventDefault / document.write ---------------- *)

let test_stop_propagation_direct () =
  let page =
    {|<div id="outer"><div id="inner">x</div></div>
<script>
window.log = "";
document.getElementById("outer").addEventListener("click", function () { log = log + "O"; });
document.getElementById("inner").addEventListener("click", function (e) {
  log = log + "I";
  e.stopPropagation();
});
document.getElementById("inner").click();
console.log("log " + log);
</script>|}
  in
  let r = analyze page in
  Alcotest.(check bool) "outer handler suppressed" true (console_contains r "log I");
  Alcotest.(check bool) "outer really did not run" false (console_contains r "log IO")

let test_prevent_default () =
  (* preventDefault on a javascript: link cancels the href execution. *)
  let page =
    {|<script>function boom() { window.__boom = 1; }</script>
<a id="lnk" href="javascript:boom()">go</a>
<script>
document.getElementById("lnk").addEventListener("click", function (e) { e.preventDefault(); });
document.getElementById("lnk").click();
console.log("boom " + (typeof window.__boom));
</script>|}
  in
  let r = analyze page in
  Alcotest.(check bool) "default action cancelled" true
    (console_contains r "boom undefined")

let test_document_write_inline () =
  let page =
    {|<script>document.write("<div id='written'>w</div>");</script>
<script>
var el = document.getElementById("written");
console.log("found " + (el != null));
console.log("order " + document.getElementsByTagName("div").length);
</script>|}
  in
  let r = analyze page in
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes);
  Alcotest.(check bool) "written element parsed" true (console_contains r "found true")

let test_document_write_script_executes () =
  (* A script written by document.write executes, in order, before later
     markup — the classic loader idiom. *)
  let page =
    {|<script>document.write("<script>injected = 41;</scr" + "ipt>");</script>
<script>console.log("injected " + (injected + 1));</script>|}
  in
  let r = analyze page in
  Alcotest.(check int) "no crashes" 0 (List.length r.Webracer.crashes);
  Alcotest.(check bool) "written script ran first" true (console_contains r "injected 42")

let test_document_write_outside_parsing_ignored () =
  let page =
    {|<script>setTimeout(function () { document.write("<p>late</p>"); done = 1; }, 5);</script>|}
  in
  let r = analyze page in
  Alcotest.(check bool) "warning recorded" true (r.Webracer.crashes <> [])

let extra_suite2 =
  [
    Alcotest.test_case "stopPropagation (dispatch)" `Quick test_stop_propagation_direct;
    Alcotest.test_case "preventDefault" `Quick test_prevent_default;
    Alcotest.test_case "document.write markup" `Quick test_document_write_inline;
    Alcotest.test_case "document.write script" `Quick test_document_write_script_executes;
    Alcotest.test_case "document.write after load" `Quick test_document_write_outside_parsing_ignored;
  ]

let suite = suite @ extra_suite2

(* --- cookie & localStorage races --------------------------------------- *)

let test_cookie_race () =
  (* Two AJAX completion handlers both write document.cookie: unordered,
     one shared cell per document (§8's cookie handling, implemented). *)
  let page =
    {|<script>
function beacon(u) {
  var r = new XMLHttpRequest();
  r.onreadystatechange = function () {
    if (r.readyState === 4) { document.cookie = "seen_" + u + "=1"; }
  };
  r.open("GET", u);
  r.send();
}
beacon("a.txt");
beacon("b.txt");
</script>|}
  in
  let r = analyze ~resources:[ ("a.txt", "a"); ("b.txt", "b") ] page in
  let cookie_races =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Js_var { name = "cookie"; _ } -> true
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check int) "cookie write-write race" 1 (List.length cookie_races)

let test_cookie_jar_accumulates () =
  let page =
    {|<script>
document.cookie = "a=1";
document.cookie = "b=2";
console.log("jar " + document.cookie);
</script>|}
  in
  let r = analyze page in
  Alcotest.(check bool) "jar keeps both" true (console_contains r "jar a=1; b=2")

let test_local_storage_race_per_key () =
  (* Two timers write the same key (race); a third touches another key
     (no interference). *)
  let page =
    {|<script>
setTimeout(function () { localStorage.setItem("visits", "1"); }, 10);
setTimeout(function () { localStorage.setItem("visits", "2"); }, 11);
setTimeout(function () { localStorage.setItem("other", "x"); }, 12);
</script>|}
  in
  let r = analyze page in
  let storage_races name =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Js_var { name = n; _ } -> n = name
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check int) "race on the shared key" 1 (List.length (storage_races "visits"));
  Alcotest.(check int) "no race on the other key" 0 (List.length (storage_races "other"))

let test_local_storage_check_then_set () =
  (* The common first-visit idiom: read-miss then write; a concurrent
     handler's write races with the miss read. *)
  let page =
    {|<script>
setTimeout(function () {
  if (localStorage.getItem("uid") === null) { localStorage.setItem("uid", "A"); }
}, 10);
setTimeout(function () { localStorage.setItem("uid", "B"); }, 11);
</script>|}
  in
  let r = analyze page in
  let races =
    List.filter
      (fun (x : Race.t) ->
        match x.Race.loc with
        | Location.Js_var { name = "uid"; _ } -> true
        | _ -> false)
      r.Webracer.races
  in
  Alcotest.(check int) "uid races" 1 (List.length races)

let storage_suite =
  [
    Alcotest.test_case "cookie race" `Quick test_cookie_race;
    Alcotest.test_case "cookie jar" `Quick test_cookie_jar_accumulates;
    Alcotest.test_case "localStorage per-key race" `Quick test_local_storage_race_per_key;
    Alcotest.test_case "localStorage check-then-set" `Quick test_local_storage_check_then_set;
  ]

let suite = suite @ storage_suite
