(* Tests for trace recording/replay and the atomicity checker. *)

module Graph = Wr_hb.Graph
module Op = Wr_hb.Op
module Access = Wr_mem.Access
module Location = Wr_mem.Location
open Wr_detect

let mk_access ?(flags = []) ?(kind = `Read) ~op loc = Access.make ~flags ~context:"t" loc kind op

let sample_trace () =
  let g = Graph.create () in
  let a = Graph.fresh g Op.Script ~label:"a" in
  let b = Graph.fresh g Op.Timeout_callback ~label:"b" in
  let c = Graph.fresh g Op.Parse ~label:"c" in
  Graph.add_edge g a b;
  let var = Location.Js_var { cell = 7; name = "x" } in
  let elem = Location.Html_elem (Location.Id { doc = 1; id = "dw" }) in
  let handler = Location.Event_handler { target = 3; event = "load"; slot = Location.Attr } in
  let accesses =
    [
      mk_access ~kind:`Write ~op:a var;
      mk_access ~flags:[ Access.Observed_miss ] ~op:b elem;
      mk_access ~kind:`Write ~flags:[ Access.Function_decl ] ~op:c handler;
    ]
  in
  Trace.capture g ~accesses

let test_json_roundtrip () =
  let t = sample_trace () in
  let t' = Trace.of_json (Trace.to_json t) in
  Alcotest.(check bool) "ops preserved" true (t'.Trace.ops = t.Trace.ops);
  Alcotest.(check bool) "edges preserved" true (t'.Trace.edges = t.Trace.edges);
  Alcotest.(check int) "access count" 3 (List.length t'.Trace.accesses);
  List.iter2
    (fun (x : Access.t) (y : Access.t) ->
      Alcotest.(check bool) "loc" true (Location.equal x.Access.loc y.Access.loc);
      Alcotest.(check bool) "kind" true (x.Access.kind = y.Access.kind);
      Alcotest.(check int) "op" x.Access.op y.Access.op;
      Alcotest.(check bool) "flags" true (x.Access.flags = y.Access.flags))
    t.Trace.accesses t'.Trace.accesses

let test_save_load () =
  let t = sample_trace () in
  let path = Filename.temp_file "wr_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save t path;
      let t' = Trace.load path in
      Alcotest.(check int) "accesses" 3 (List.length t'.Trace.accesses))

let test_rebuild_graph_reachability () =
  let t = sample_trace () in
  let g = Trace.rebuild_graph t in
  Alcotest.(check bool) "a -> b" true (Graph.happens_before g 0 1);
  Alcotest.(check bool) "a, c concurrent" true (Graph.chc g 0 2)

let test_recorder_tees () =
  let g = Graph.create () in
  let inner = Last_access.create g in
  let d, read = Trace.recorder inner in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  let loc = Location.Js_var { cell = 1; name = "x" } in
  d.Detector.record (mk_access ~kind:`Write ~op:a loc);
  d.Detector.record (mk_access ~kind:`Write ~op:b loc);
  Alcotest.(check int) "recorded both" 2 (List.length (read ()));
  Alcotest.(check int) "forwarded to detector" 1 (List.length (d.Detector.races ()))

let test_replay_matches_live_run () =
  (* Record a racy page, replay its trace, expect identical race sets. *)
  let page =
    {|<script async="true" src="a.js"></script><script>x = 2; y = 3;</script>|}
  in
  let report =
    Webracer.analyze
      (Webracer.config ~page
         ~resources:[ ("a.js", "x = 1; y = 1;") ]
         ~seed:3 ~explore:false ~trace:true ())
  in
  let trace = Option.get report.Webracer.trace in
  let replayed = Trace.replay trace ~detector:Last_access.create in
  let describe races =
    List.sort compare
      (List.map
         (fun (r : Race.t) ->
           (Race.type_name r.Race.race_type, Location.to_string r.Race.loc))
         races)
  in
  Alcotest.(check bool) "found races" true (report.Webracer.races <> []);
  Alcotest.(check bool) "replay reproduces the live run" true
    (describe replayed = describe report.Webracer.races)

(* --- atomicity ----------------------------------------------------- *)

let triple ~k1 ~kc ~k2 ~order_c =
  (* Transaction A -> B accessing loc; C concurrent (or ordered when
     [order_c]). Returns violations. *)
  let g = Graph.create () in
  let a = Graph.fresh g Op.Script ~label:"A" in
  let c = Graph.fresh g Op.Script ~label:"C" in
  let b = Graph.fresh g Op.Script ~label:"B" in
  Graph.add_edge g a b;
  if order_c then Graph.add_edge g a c;
  let loc = Location.Js_var { cell = 5; name = "shared" } in
  let accesses =
    [ mk_access ~kind:k1 ~op:a loc; mk_access ~kind:kc ~op:c loc; mk_access ~kind:k2 ~op:b loc ]
  in
  Atomicity.check g accesses

let test_atomicity_patterns () =
  let expect name k1 kc k2 pattern =
    match triple ~k1 ~kc ~k2 ~order_c:false with
    | [ v ] ->
        Alcotest.(check string) name (Atomicity.pattern_name pattern)
          (Atomicity.pattern_name v.Atomicity.pattern)
    | l -> Alcotest.failf "%s: expected 1 violation, got %d" name (List.length l)
  in
  expect "r-w-r" `Read `Write `Read Atomicity.R_w_r;
  expect "w-w-r" `Write `Write `Read Atomicity.W_w_r;
  expect "r-w-w" `Read `Write `Write Atomicity.R_w_w;
  expect "w-r-w" `Write `Read `Write Atomicity.W_r_w

let test_atomicity_serializable_cases () =
  (* R-R-R and W-R-R interleavings are serializable: no report. *)
  Alcotest.(check int) "r-r-r" 0 (List.length (triple ~k1:`Read ~kc:`Read ~k2:`Read ~order_c:false));
  Alcotest.(check int) "w-r-r" 0
    (List.length (triple ~k1:`Write ~kc:`Read ~k2:`Read ~order_c:false));
  (* An ordered C cannot interleave. *)
  Alcotest.(check int) "ordered C" 0
    (List.length (triple ~k1:`Read ~kc:`Write ~k2:`Read ~order_c:true))

let test_atomicity_requires_transaction () =
  (* Without A -> B there is no transaction, just plain races. *)
  let g = Graph.create () in
  let a = Graph.fresh g Op.Script ~label:"A" in
  let c = Graph.fresh g Op.Script ~label:"C" in
  let b = Graph.fresh g Op.Script ~label:"B" in
  let loc = Location.Js_var { cell = 5; name = "shared" } in
  let accesses =
    [
      mk_access ~kind:`Read ~op:a loc; mk_access ~kind:`Write ~op:c loc;
      mk_access ~kind:`Read ~op:b loc;
    ]
  in
  Alcotest.(check int) "no transaction, no violation" 0
    (List.length (Atomicity.check g accesses))

let test_atomicity_ford_pattern_end_to_end () =
  (* The Ford polling pattern is a check-act transaction across timer
     callbacks; the parser's sentinel write interleaves (benign by design,
     but exactly the shape the checker must see). *)
  let page =
    {|<div id="host"></div>
<script>function poll() {
  if (document.getElementById("sentinel") != null) { found = 1; }
  else { setTimeout(poll, 20); }
}
setTimeout(poll, 1);
setTimeout(function () {
  var s = document.createElement("div");
  s.id = "sentinel";
  document.getElementById("host").appendChild(s);
}, 50);</script>|}
  in
  let report =
    Webracer.analyze (Webracer.config ~page ~seed:1 ~explore:false ~trace:true ())
  in
  let violations = Atomicity.check_trace (Option.get report.Webracer.trace) in
  Alcotest.(check bool) "sentinel check-act flagged" true
    (List.exists
       (fun (v : Atomicity.violation) ->
         match v.Atomicity.loc with
         | Location.Html_elem (Location.Id { id = "sentinel"; _ }) ->
             v.Atomicity.pattern = Atomicity.R_w_r
         | _ -> false)
       violations)

let suite =
  [
    Alcotest.test_case "trace json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "trace save/load" `Quick test_save_load;
    Alcotest.test_case "trace graph rebuild" `Quick test_rebuild_graph_reachability;
    Alcotest.test_case "recorder tees" `Quick test_recorder_tees;
    Alcotest.test_case "replay = live run" `Quick test_replay_matches_live_run;
    Alcotest.test_case "atomicity patterns" `Quick test_atomicity_patterns;
    Alcotest.test_case "atomicity serializable" `Quick test_atomicity_serializable_cases;
    Alcotest.test_case "atomicity needs transaction" `Quick test_atomicity_requires_transaction;
    Alcotest.test_case "atomicity: Ford pattern" `Quick test_atomicity_ford_pattern_end_to_end;
  ]
