The analysis daemon: `webracer serve` speaks newline-delimited JSON over
a socket; `webracer call` is its client.

  $ alias webracer='../../bin/webracer_cli.exe'

Unix socket paths cap out around 100 bytes and the cram sandbox path is
long, so the sockets live under /tmp.

  $ SOCK=$(mktemp -u)

Each page gets its own directory so sibling artifacts are not slurped in
as fetchable resources.

  $ mkdir fast slow
  $ cat > fast/page.html <<'HTML'
  > <script>var x = 1; x = x + 1;</script>
  > HTML
  $ cat > slow/page.html <<'HTML'
  > <script>var s = 0; var i = 0; for (i = 0; i < 60000; i++) { s = s + i; }</script>
  > HTML

Start the daemon with four workers; `call` retries the connection while
it boots, so no sleep is needed.

  $ webracer serve --socket "$SOCK" -j 4 2> serve.log &
  $ PID=$!

ping answers inline from the accept loop, echoing the request id:

  $ webracer call --socket "$SOCK" ping
  {"schema_version":1,"id":1,"ok":true,"result":{"pong":true}}

A valid analyze over the socket is byte-identical to the one-shot
`webracer run --json` document, modulo the wall-clock reading:

  $ webracer call --socket "$SOCK" analyze fast/page.html > resp.json
  $ webracer run fast/page.html --json > direct.json
  $ sed 's/^{"schema_version":1,"id":1,"ok":true,"result"://; s/}$//' resp.json \
  >   | sed 's/"wall_clock_s":[0-9.e+-]*/"wall_clock_s":0/' > got.json
  $ sed 's/"wall_clock_s":[0-9.e+-]*/"wall_clock_s":0/' direct.json > want.json
  $ cmp got.json want.json && echo service output matches one-shot run
  service output matches one-shot run

Repeating the identical request is a cache hit: the daemon replays the
original response verbatim without re-running the browser, and the
stats verb exposes the counters.

  $ webracer call --socket "$SOCK" analyze fast/page.html > resp2.json
  $ cmp resp.json resp2.json && echo cache replay is byte-identical
  cache replay is byte-identical
  $ webracer call --socket "$SOCK" stats | grep -o '"hits":1,"misses":1'
  "hits":1,"misses":1
  $ webracer call --socket "$SOCK" stats | grep -o '"analyses_run":1'
  "analyses_run":1

stats also reports service health: uptime, the queue's high-water mark
(one analyze was in flight at peak) and the cache hit ratio.

  $ webracer call --socket "$SOCK" stats | grep -o '"high_water":1'
  "high_water":1
  $ webracer call --socket "$SOCK" stats | grep -o '"hit_ratio":0.5'
  "hit_ratio":0.5
  $ webracer call --socket "$SOCK" stats | grep -c '"uptime_s"'
  1

A request may carry a trace id: the daemon echoes it on the response
(untraced traffic stays byte-identical — see the cmp pins above) and
`--verbose` prints it on stderr.

  $ webracer call --socket "$SOCK" ping --trace-id t-cram
  {"schema_version":1,"id":1,"trace":"t-cram","ok":true,"result":{"pong":true}}
  $ webracer call --socket "$SOCK" ping --trace-id t-cram --verbose 2>&1 >/dev/null
  call: id=1 trace=t-cram

Schema v2 is negotiated per request: `--schema 2` opts this one call in,
and the envelope gains the answering shard id (the v1 pins above prove
untagged traffic never moves).

  $ webracer call --socket "$SOCK" ping --schema 2
  {"schema_version":2,"id":1,"shard":0,"ok":true,"result":{"pong":true}}

The same daemon speaks HTTP/1.1 on the same socket — the first bytes of
each connection pick the protocol. `call --http` wraps the verb in a
request to the /v1/ endpoints; HTTP responses are v2-native.

  $ webracer call --socket "$SOCK" ping --http
  {"schema_version":2,"id":null,"shard":0,"ok":true,"result":{"pong":true}}
  $ webracer call --socket "$SOCK" analyze fast/page.html --http > http-resp.json
  $ grep -o '"shard":0,"ok":true' http-resp.json
  "shard":0,"ok":true
  $ sed 's/^{"schema_version":2,"id":null,"shard":0,"ok":true,"result"://; s/}$//' http-resp.json \
  >   | sed 's/"wall_clock_s":[0-9.e+-]*/"wall_clock_s":0/' > http-got.json
  $ cmp http-got.json want.json && echo http analyze matches one-shot run
  http analyze matches one-shot run

The metrics verb exposes per-stage latency histograms (decode, queue,
run, encode, total with p50..p999), queue/cache gauges and a
Prometheus-style text rendering.

  $ webracer call --socket "$SOCK" metrics > metrics.json
  $ grep -o '"latency"' metrics.json
  "latency"
  $ grep -o '"run":{"count":1' metrics.json
  "run":{"count":1
  $ grep -o '"p999"' metrics.json | wc -l | tr -d ' '
  5
  $ grep -o 'webracer_request_latency_seconds{stage=\\"total\\",quantile=\\"0.99\\"}' metrics.json
  webracer_request_latency_seconds{stage=\"total\",quantile=\"0.99\"}

The watch verb streams metrics snapshots — one ok response per tick
with an incrementing seq — and `webracer top` renders that stream as a
live dashboard (one frame per tick; --count bounds it for scripting):

  $ webracer call --socket "$SOCK" watch --count 2 --interval 0.1 > watch.out
  $ grep -c '"ok":true' watch.out
  2
  $ grep -o '"seq":0' watch.out
  "seq":0
  $ grep -o '"seq":1' watch.out
  "seq":1
  $ grep -c '"requests_total"' watch.out
  2
  $ webracer top --socket "$SOCK" --count 1 --interval 0.1 > top.out
  $ grep -c 'webracer top' top.out
  1
  $ grep -c 'req/s' top.out
  1
  $ grep -c 'p99(ms)' top.out
  2

The predict verb runs the static predictor over the socket; the fast
page is a single ordered script, so nothing is predicted:

  $ webracer call --socket "$SOCK" predict fast/page.html
  {"schema_version":1,"id":1,"ok":true,"result":{"schema_version":1,"units":4,"docs":1,"mhp_pairs":0,"predictions":[],"summary":{"total":0,"html":0,"function":0,"variable":0,"dispatch":0},"lint":[]}}

The triage verb runs guided schedule exploration server-side and returns
the schema-v2 triage report; with nothing predicted only the baseline
schedule runs. The HTTP surface routes the same verb via /v1/triage.

  $ webracer call --socket "$SOCK" triage fast/page.html
  {"schema_version":1,"id":1,"ok":true,"result":{"schema_version":2,"budget":24,"schedules_run":1,"schedules_to_confirm":0,"predictions":0,"confirmed":0,"refuted":0,"unconfirmed":0,"sound":true,"items":[],"unpredicted":[]}}
  $ webracer call --socket "$SOCK" triage fast/page.html --http
  {"schema_version":2,"id":null,"shard":0,"ok":true,"result":{"schema_version":2,"budget":24,"schedules_run":1,"schedules_to_confirm":0,"predictions":0,"confirmed":0,"refuted":0,"unconfirmed":0,"sound":true,"items":[],"unpredicted":[]}}
  $ webracer call --socket "$SOCK" stats | grep -o '"triage":2'
  "triage":2

A malformed request gets a structured bad_request error — and the
connection (and daemon) survive it. `call` exits nonzero on any error
response.

  $ echo not json | webracer call --socket "$SOCK" raw
  {"schema_version":1,"id":null,"ok":false,"error":{"code":"bad_request","message":"invalid JSON: bad literal at offset 0"}}
  [1]

A 100-request pipelined burst (fresh seed, so it cannot hit the cache)
is fully absorbed by the bounded queue and answered ok:

  $ webracer call --socket "$SOCK" analyze fast/page.html --seed 7 --repeat 100 \
  >   | grep -c '"ok":true'
  100

Overload: a daemon with one worker and a two-slot queue sheds an
oversized burst of slow analyses as overload errors instead of piling
up or crashing — every request is answered.

  $ SOCK2=$(mktemp -u)
  $ webracer serve --socket "$SOCK2" -j 1 --queue 2 --cache 0 2> serve2.log &
  $ PID2=$!
  $ webracer call --socket "$SOCK2" analyze slow/page.html --no-explore --repeat 20 > burst.out
  [1]
  $ grep -c '"ok":true' burst.out
  2
  $ grep -c '"code":"overload"' burst.out
  18

Under v2 the same shedding carries the HTTP-parity status inside the
error object, so HTTP and raw clients dispatch on the same taxonomy.

  $ webracer call --socket "$SOCK2" analyze slow/page.html --no-explore --repeat 6 --schema 2 > burst2.out
  [1]
  $ grep -c '"ok":true' burst2.out
  2
  $ grep -c '"http_status":429' burst2.out
  4
  $ grep -c '"shard":0' burst2.out
  6
  $ kill -TERM $PID2 && wait $PID2

Timeout: a request that outlives its wall-clock budget is answered with
a timeout error (the daemon stays healthy).

  $ SOCK3=$(mktemp -u)
  $ webracer serve --socket "$SOCK3" -j 1 --wall-limit 0.05 2> serve3.log &
  $ PID3=$!
  $ webracer call --socket "$SOCK3" analyze slow/page.html --no-explore | grep -o '"code":"timeout"'
  "code":"timeout"
  $ kill -TERM $PID3 && wait $PID3

Flight recorder: a daemon started with --postmortem-dir keeps a
per-domain ring of recent request milestones and log lines; SIGUSR2
dumps it as a postmortem (JSONL + a mini Chrome trace) without
disturbing service.

  $ SOCK4=$(mktemp -u)
  $ webracer serve --socket "$SOCK4" -j 1 --postmortem-dir pm 2> serve4.log &
  $ PID4=$!
  $ webracer call --socket "$SOCK4" analyze fast/page.html --trace-id t-pm \
  >   | grep -o '"trace":"t-pm"'
  "trace":"t-pm"
  $ kill -USR2 $PID4
  $ for i in $(seq 100); do
  >   test -f pm/postmortem-0-signal.jsonl && break; sleep 0.05
  > done
  $ grep -o '"postmortem":"signal"' pm/postmortem-0-signal.jsonl
  "postmortem":"signal"
  $ grep -q 't-pm' pm/postmortem-0-signal.jsonl && echo trace id retained
  trace id retained
  $ test -f pm/postmortem-0-signal.trace.json && echo chrome trace written
  chrome trace written
  $ webracer call --socket "$SOCK4" ping | grep -o '"pong":true'
  "pong":true
  $ kill -TERM $PID4 && wait $PID4

bench-serve generates barrier-synchronized concurrent load against a
running daemon and reports throughput, tail latency and the
response-class distribution; --json-out writes the Perf-7 document.

  $ webracer bench-serve --socket "$SOCK" --conns 2 --pipeline 4 --duration 0.2 \
  >   --json-out bench.json 2> bench.log > bench.out
  $ grep -c 'raw ping' bench.out
  1
  $ grep -c 'throughput' bench.out
  1
  $ grep -c '^latency p50' bench.out
  1
  $ grep -o '^classes: ok=' bench.out
  classes: ok=
  $ grep -o '"throughput_rps"' bench.json
  "throughput_rps"
  $ grep -o '"p999"' bench.json
  "p999"

The HTTP surface takes load too (sequential round trips per connection):

  $ webracer bench-serve --socket "$SOCK" --conns 1 --duration 0.1 --http | grep -c 'http ping'
  1

Clean shutdown: SIGTERM drains and exits 0, the stale socket is
removed, and the log carries the lifecycle lines.

  $ kill -TERM $PID && wait $PID
  $ test -S "$SOCK" || echo socket removed
  socket removed
  $ grep -c 'listening on' serve.log
  1
  $ grep -c 'drained and stopped' serve.log
  1
