The ahead-of-time race predictor: static effects + MHP, no execution.

  $ alias webracer='../../bin/webracer_cli.exe'

A paper Fig. 3 shape: a javascript: link races the parser to #panel.

  $ cat > fig3.html <<'HTML'
  > <html><body>
  > <script>
  > function open_panel() {
  >   var p = document.getElementById("panel");
  >   if (p != null) { p.style.display = "block"; }
  > }
  > </script>
  > <a id="open" href="javascript:open_panel()">Show the panel</a>
  > <div id="panel" style="display:none">panel contents</div>
  > </body></html>
  > HTML

Human-readable prediction:

  $ webracer predict fig3.html
  units: 9  mhp pairs: 3
  predicted races: 1 (html 1, function 0, variable 0, dispatch 0)
   1. html race on elem doc0#panel
        dispatch click on <a#open> (read)
        parse <div#panel> (write)

The JSON schema is pinned:

  $ webracer predict fig3.html --json
  {"schema_version":1,"units":9,"docs":1,"mhp_pairs":3,"predictions":[{"type":"html","location":"elem doc0#panel","first":{"uid":5,"kind":"dispatch","label":"dispatch click on <a#open>"},"second":{"uid":6,"kind":"parse","label":"parse <div#panel>"},"first_kind":"read","second_kind":"write"}],"summary":{"total":1,"html":1,"function":0,"variable":0,"dispatch":0},"lint":[]}

--compare validates the prediction against the dynamic detector:

  $ webracer predict fig3.html --compare | tail -1
  compare: dynamic races 1, matched 1; predictions 1, confirmed 1

Lint mode surfaces static hygiene findings and always exits 0:

  $ cat > lint.html <<'HTML'
  > <html><body>
  > <div id="dup">one</div>
  > <div id="dup">two</div>
  > <script>
  > orphan = 1;
  > setTimeout(function () {
  >   var el = document.getElementById("ghost");
  >   el.onclick = function () { orphan = orphan + 1; };
  > }, 10);
  > </script>
  > </body></html>
  > HTML

  $ webracer predict lint.html --lint
  {"schema_version":1,"lint":[{"check":"duplicate-id","doc":0,"id":"dup","count":2},{"check":"handler-on-missing-id","doc":0,"id":"ghost","event":"click","registered_by":"timer (10ms) from inline script (doc0/node4)"}]}

The corpus gate: every dynamically detected race must be statically
predicted (exit 2 on a miss). Precision and recall are pinned; the
adversarial pack (computed member names, dead branches, dynamic eval)
keeps precision honestly below 100% while recall stays total.

  $ webracer predict --corpus -j 0
  Website          Dyn  Matched  Pred  Conf  Missed
  ---------------  ---  -------  ----  ----  ------
  adv_late_async     1        1     2     1       0
  adv_computed       0        0     2     0       0
  adv_dead_branch    0        0     1     0       0
  adv_eval_dyn       0        0     6     0       0
  sites: 105  dynamic races: 4728  predicted: 2679
  recall: 4728/4728 (100.0%)  precision: 2669/2679 (99.6%)
  confirmed by class: harmful 6  benign 352  filtered-only 2311  unconfirmed 10
