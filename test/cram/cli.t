The CLI end to end: generate a corpus site, analyze it, replay a racy page.

  $ alias webracer='../../bin/webracer_cli.exe'

Generate a synthetic site to disk:

  $ webracer sitegen Allstate site
  wrote site/index.html and 2 resources

Analyze it; counts are deterministic in the seed:

  $ webracer run site/index.html --seed 3 | head -2
  races: 8 (html 6, function 2, variable 0, event-dispatch 0)
  after filters: 8

The JSON report carries the same races:

  $ webracer run site/index.html --seed 3 --json | tr ',' '\n' | grep -c '"type":"html"'
  12

Unfiltered output for a page with a benign checked-write form race:

  $ cat > checked.html <<'HTML'
  > <input type="text" id="q" />
  > <script>var el = document.getElementById("q");
  > if (el.value === "") { el.value = "hint"; }</script>
  > HTML

  $ webracer run checked.html | head -2
  races: 1 (html 0, function 0, variable 1, event-dispatch 0)
  after filters: 0 (suppressed: form-field 1, single-dispatch 0)

  $ webracer run checked.html --raw | sed -n '7,9p' | sed 's/@[0-9]*/@N/'
  1 races (unfiltered):
  
   1. variable race on var value@N:

Replay makes a function race manifest (exit code 2):

  $ cat > fig4.html <<'HTML'
  > <iframe id="i" src="sub.html" onload="doNextStep();"></iframe>
  > <div>a</div><div>b</div><div>c</div>
  > <script>function doNextStep() { return 1; }</script>
  > HTML
  $ cat > sub.html <<'HTML'
  > <p>sub</p>
  > HTML

  $ webracer replay fig4.html --schedules 20 > verdict.txt; echo "exit $?"
  exit 2
  $ head -1 verdict.txt
  20 schedules tried; 6 crashed; 1 distinct console outputs

Trace recording and offline replay:

  $ webracer run fig4.html --dump-trace trace.json | head -1
  races: 1 (html 0, function 1, variable 0, event-dispatch 0)

  $ webracer offline trace.json --detector full-track | head -2
  trace: 14 ops, 20 edges, 53 accesses
  races: 1

  $ webracer offline trace.json --atomicity | grep -c 'atomicity violations:'
  1

Profiling prints the per-phase breakdown (durations vary; phase names and
column layout are stable):

  $ webracer profile site/index.html --seed 3 | awk 'NR<=9 {print $1}'
  phase
  --------------
  parse
  js-exec
  event-dispatch
  scheduler
  detector
  other
  total

  $ webracer profile site/index.html --seed 3 --trace-out prof.json | tail -1
  trace written to prof.json

The trace is Chrome trace_event JSON:

  $ head -c 16 prof.json; echo
  {"traceEvents":[
One process_name row plus one thread_name row per recording domain
(a single-domain profile run has exactly one):

  $ tr ',' '\n' < prof.json | grep -c '"ph":"M"'
  2

profile --json emits the whole document as one machine-readable object
(phase metrics, race counts — plus a "gc" section under --gc-trace,
sourced from runtime events):

  $ webracer profile site/index.html --seed 3 --json | tr ',' '\n' | grep -c '"races":{"raw":'
  1
  $ webracer profile site/index.html --seed 3 --json --gc-trace | tr ',' '\n' \
  >   | grep -c '"source":"runtime_events"'
  1

Metrics ride along with run --json under the "telemetry" key:

  $ webracer run site/index.html --seed 3 --metrics --json | tr ',' '\n' | grep -c '"telemetry":{'
  1
