Race witnesses: `webracer explain` renders checkable evidence per race.

  $ alias webracer='../../bin/webracer_cli.exe'

The paper's Figure 4 function race: an iframe's load handler calls a
function whose declaration races with the parser.

  $ cat > fig4.html <<'HTML'
  > <iframe id="i" src="sub.html" onload="doNextStep();"></iframe>
  > <div>a</div><div>b</div><div>c</div>
  > <script>function doNextStep() { return 1; }</script>
  > HTML
  $ cat > sub.html <<'HTML'
  > <p>sub</p>
  > HTML

Each witness shows both provenance chains, the fork point, and the
no-path frontier, and re-checks its own certificate:

  $ webracer explain fig4.html --no-explore
  races: 1 raw, 1 after filters
  
   1. witness for function race on var doNextStep@142:
        older access: #6[script] script (inline)
          provenance: #0[initial] -> #1[parse] -> #2[parse] -> #3[parse]
                      -> #4[parse] -> #5[parse] -> #6[script]
        newer access: #12[handler] load handler (target) @node#108
          provenance: #0[initial] -> #1[parse] -> #11[dispatch] -> #12[handler]
        forked after common ancestor: #1[parse] parse <iframe>
        no-path frontier (#6 cannot reach #12): {#8, #9, #10, #11, #12} (5 ops)
        certificate: PASS
  



Selecting a race out of range is a usage error:

  $ webracer explain fig4.html --race 2
  explain: race 2 out of range (page has 1 races)
  [1]

The DOT export is a valid digraph restricted to evidence operations,
with the racing ops and provenance paths highlighted:

  $ webracer explain fig4.html --no-explore --dot w.dot | tail -1
  witness subgraph written to w.dot
  $ head -1 w.dot; tail -1 w.dot
  digraph happens_before {
  }
  $ grep -c 'color=red' w.dot
  10
  $ grep -c 'unrelated\|n7 ' w.dot
  0
  [1]

The JSON export embeds the witness with a passing certificate:

  $ webracer explain fig4.html --no-explore --json w.json | tail -1
  witnesses written to w.json
  $ tr ',' '\n' < w.json | grep -c '"certified":true'
  1

The structured event log records pipeline milestones as JSONL:

  $ webracer run fig4.html --log-out events.jsonl > /dev/null
  $ sed 's/.*"event":"\([^"]*\)".*/\1/' events.jsonl
  page.parsing_done
  page.DOMContentLoaded
  page.load
  detect.races
  page.analyzed
  filters.applied

`webracer run` is a CI gate: a harmful race surviving the filters exits 2.

  $ cat > lost_input.html <<'HTML'
  > <input type="text" id="field" />
  > <script src="init.js"></script>
  > HTML
  $ cat > init.js <<'JS'
  > document.getElementById("field").value = "A";
  > JS
  $ webracer run lost_input.html > /dev/null
  [2]
  $ webracer run fig4.html > /dev/null
