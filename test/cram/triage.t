Prediction triage: guided schedule exploration confirms or refutes every
static prediction.

  $ alias webracer='../../bin/webracer_cli.exe'

The paper's Fig. 3 shape: the race fires on the very first (baseline)
schedule, so triage needs no directed runs at all.

  $ cat > fig3.html <<'HTML'
  > <html><body>
  > <script>
  > function open_panel() {
  >   var p = document.getElementById("panel");
  >   if (p != null) { p.style.display = "block"; }
  > }
  > </script>
  > <a id="open" href="javascript:open_panel()">Show the panel</a>
  > <div id="panel" style="display:none">panel contents</div>
  > </body></html>
  > HTML

  $ webracer triage fig3.html
  predictions: 1  confirmed: 1  refuted: 0  unconfirmed: 0
  schedules: 1 run (budget 24), last confirmation at 1
    confirmed   html     elem doc0#panel — schedule baseline

The JSON schema (v2) is pinned, field order and all:

  $ webracer triage fig3.html --json
  {"schema_version":2,"budget":24,"schedules_run":1,"schedules_to_confirm":1,"predictions":1,"confirmed":1,"refuted":0,"unconfirmed":0,"sound":true,"items":[{"type":"html","location":"elem doc0#panel","classification":"confirmed","schedule":"baseline","directives":["parse:slow+user:fast","parse:fast+user:slow","parse:fast","parse:slow","user:fast","user:slow"]}],"unpredicted":[]}

--blind reports how many schedules undirected enumeration (random seed
sweep over the parse delay) needs to reach the same confirmations:

  $ webracer triage fig3.html --blind
  predictions: 1  confirmed: 1  refuted: 0  unconfirmed: 0
  schedules: 1 run (budget 24), last confirmation at 1
    confirmed   html     elem doc0#panel — schedule baseline
  blind equivalent: 1 schedules

A dead-branch registration: the flow-insensitive effect pass predicts a
race on [adv_dead], but no schedule ever executes the write. Triage
refutes it with a Side_never_observed certificate (blind enumeration
needs 0 schedules only because there is nothing to confirm):

  $ cat > dead.html <<'HTML'
  > <html><body>
  > <script async="true" src="adv_dead.js"></script>
  > <script>
  > setTimeout(function () {
  >   if (typeof adv_dead != "undefined") { adv_chk = 1; }
  > }, 12);
  > </script>
  > </body></html>
  > HTML
  $ cat > adv_dead.js <<'JS'
  > var adv_en = 0;
  > if (adv_en > 0) { adv_dead = 1; }
  > JS

  $ webracer triage dead.html
  predictions: 1  confirmed: 0  refuted: 1  unconfirmed: 0
  schedules: 11 run (budget 24), last confirmation at 0
    refuted     variable var adv_dead — certificate: first side (var adv_dead) never observed

The corpus gate: every confirmed dynamic race must come from the
prediction set (exit 2 on a soundness violation). The adversarial pack
contributes the refutations; only imperfect sites are listed.

  $ webracer triage --corpus -j 0
  Website          Pred  Conf  Ref  Unconf  Sched
  ---------------  ----  ----  ---  ------  -----
  adv_computed        2     0    2       0     17
  adv_dead_branch     1     0    1       0     11
  adv_eval_dyn        6     0    6       0     13
  sites: 105  predictions: 2679  confirmed: 2670  refuted: 9  unconfirmed: 0
  schedules: 147 run  soundness violations: 0
