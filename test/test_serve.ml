(* Tests for Wr_serve: the Request/Response wire API, the dispatch path
   shared with the CLI, the LRU result cache, and a live daemon on a
   loopback TCP port (end to end: ping, analyze, cache hit, malformed
   request, overload backpressure, graceful drain). *)

module Json = Wr_support.Json
module Request = Wr_serve.Request
module Response = Wr_serve.Response
module Api = Wr_serve.Api
module Cache = Wr_serve.Cache
module Daemon = Wr_serve.Daemon
module Client = Wr_serve.Client

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* naive substring check, enough for asserting on error messages *)
let mentions needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Request ----------------------------------------------------------- *)

let decode_ok line =
  match Request.of_line line with
  | Ok req -> req
  | Error (_, msg) -> Alcotest.failf "decode failed: %s" msg

let decode_err line =
  match Request.of_line line with
  | Ok _ -> Alcotest.failf "expected a decode error for %s" line
  | Error (id, msg) -> (id, msg)

let test_request_ping_roundtrip () =
  let req = { Request.id = Json.Int 7; trace = None; verb = Request.Ping } in
  let req' = decode_ok (Request.to_line req) in
  check bool_c "id survives" true (req'.Request.id = Json.Int 7);
  check string_c "verb" "ping" (Request.verb_name req'.Request.verb)

let test_request_analyze_roundtrip () =
  let params =
    Request.analyze_params ~page:"<p>hi</p>"
      ~resources:[ ("a.js", "var x = 1;") ]
      ~seed:9 ~explore:false ~detector:Webracer.Config.Full_track
      ~hb:Wr_hb.Graph.Dfs ~time_limit:1234. ~dedup:false ()
  in
  let req = { Request.id = Json.String "abc"; trace = None; verb = Request.Analyze params } in
  match (decode_ok (Request.to_line req)).Request.verb with
  | Request.Analyze p ->
      check string_c "page" "<p>hi</p>" p.Request.page;
      check bool_c "resources" true (p.Request.resources = [ ("a.js", "var x = 1;") ]);
      check int_c "seed" 9 p.Request.seed;
      check bool_c "explore" false p.Request.explore;
      check bool_c "detector" true (p.Request.detector = Webracer.Config.Full_track);
      check bool_c "hb" true (p.Request.hb = Wr_hb.Graph.Dfs);
      check bool_c "time_limit" true (p.Request.time_limit = 1234.);
      check bool_c "dedup" false p.Request.dedup
  | _ -> Alcotest.fail "expected analyze"

let test_request_defaults () =
  let req = decode_ok {|{"verb":"analyze","params":{"page":"<p>x</p>"}}|} in
  match req.Request.verb with
  | Request.Analyze p ->
      check int_c "seed" 0 p.Request.seed;
      check bool_c "explore" true p.Request.explore;
      check bool_c "dedup" true p.Request.dedup;
      check bool_c "detector" true (p.Request.detector = Webracer.Config.Last_access);
      check bool_c "time_limit" true (p.Request.time_limit = 60_000.)
  | _ -> Alcotest.fail "expected analyze"

let test_request_replay_explain_roundtrip () =
  let target = Request.analyze_params ~page:"<p>x</p>" () in
  let explain =
    { Request.id = Json.Null; trace = None; verb = Request.Explain { target; race = Some 2 } }
  in
  (match (decode_ok (Request.to_line explain)).Request.verb with
  | Request.Explain { race = Some 2; _ } -> ()
  | _ -> Alcotest.fail "explain round-trip");
  let replay =
    {
      Request.id = Json.Null;
      trace = None;
      verb = Request.Replay { target; schedules = 7; parse_delay = 1.5; jobs = 3 };
    }
  in
  match (decode_ok (Request.to_line replay)).Request.verb with
  | Request.Replay { schedules = 7; jobs = 3; parse_delay; _ } ->
      check bool_c "parse_delay" true (parse_delay = 1.5)
  | _ -> Alcotest.fail "replay round-trip"

let test_request_validation () =
  let _, msg = decode_err "][" in
  check bool_c "syntax error mentions JSON" true (mentions "invalid JSON" msg);
  let _, msg = decode_err {|{"verb":"frobnicate"}|} in
  check bool_c "unknown verb named" true (mentions "frobnicate" msg);
  let _, msg = decode_err {|{"verb":"analyze"}|} in
  check bool_c "missing page" true (mentions "page" msg);
  let id, _ = decode_err {|{"id":41,"verb":"analyze","params":{}}|} in
  check bool_c "id preserved in errors" true (id = Json.Int 41);
  let _, msg = decode_err {|{"schema_version":99,"verb":"ping"}|} in
  check bool_c "version mismatch named" true (mentions "schema_version 99" msg);
  let _, msg =
    decode_err {|{"verb":"analyze","params":{"page":"x","time_limit":-5}}|}
  in
  check bool_c "time_limit positive" true (mentions "time_limit" msg);
  let _, msg =
    decode_err {|{"verb":"explain","params":{"page":"x","race":0}}|}
  in
  check bool_c "race positive" true (mentions "race" msg);
  (match Request.of_line {|{"schema_version":1,"verb":"ping"}|} with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "explicit current version accepted")

(* --- Response ---------------------------------------------------------- *)

let test_response_roundtrip () =
  let ok = Response.ok ~id:(Json.Int 3) (Json.Obj [ ("pong", Json.Bool true) ]) in
  (match Response.of_line (Response.to_line ok) with
  | Ok r ->
      check bool_c "ok" true (Response.is_ok r);
      check bool_c "id" true (Response.id r = Json.Int 3)
  | Error e -> Alcotest.failf "ok round-trip: %s" e);
  let err = Response.error ~id:Json.Null Response.Overload "queue full" in
  match Response.of_line (Response.to_line err) with
  | Ok (Response.Error { code = Response.Overload; message; _ }) ->
      check string_c "message" "queue full" message
  | Ok _ -> Alcotest.fail "expected overload error"
  | Error e -> Alcotest.failf "error round-trip: %s" e

let test_error_codes () =
  List.iter
    (fun (code, name) ->
      check string_c "code name" name (Response.code_name code);
      check bool_c "code parse" true (Response.code_of_name name = Some code))
    [
      (Response.Bad_request, "bad_request");
      (Response.Timeout, "timeout");
      (Response.Overload, "overload");
      (Response.Internal, "internal");
    ];
  check bool_c "unknown code" true (Response.code_of_name "nope" = None)

(* --- Cache ------------------------------------------------------------- *)

let test_cache_key () =
  let p = Request.analyze_params ~page:"<p>x</p>" () in
  check string_c "key is stable" (Cache.key p) (Cache.key p);
  check int_c "key is a digest" 32 (String.length (Cache.key p));
  let different =
    [
      { p with Request.page = "<p>y</p>" };
      { p with Request.seed = 1 };
      { p with Request.resources = [ ("a.js", "1") ] };
      { p with Request.explore = false };
      { p with Request.detector = Webracer.Config.Full_track };
      { p with Request.hb = Wr_hb.Graph.Dfs };
      { p with Request.time_limit = 1. };
      { p with Request.dedup = false };
    ]
  in
  List.iteri
    (fun i q ->
      check bool_c (Printf.sprintf "variant %d differs" i) false
        (Cache.key p = Cache.key q))
    different

let test_cache_lru () =
  let c = Cache.create ~cap:2 in
  Cache.store c "a" (Json.Int 1);
  Cache.store c "b" (Json.Int 2);
  check bool_c "a hit" true (Cache.find c "a" = Some (Json.Int 1));
  (* "b" is now least recently used; storing "c" evicts it. *)
  Cache.store c "c" (Json.Int 3);
  check bool_c "b evicted" true (Cache.find c "b" = None);
  check bool_c "a kept" true (Cache.find c "a" = Some (Json.Int 1));
  check int_c "hits" 2 (Cache.hits c);
  check int_c "misses" 1 (Cache.misses c);
  check int_c "length" 2 (Cache.length c)

(* --- Api dispatch ------------------------------------------------------ *)

let test_dispatch_ping () =
  match Api.dispatch { Request.id = Json.Int 1; trace = None; verb = Request.Ping } with
  | Response.Ok { result; _ } ->
      check bool_c "pong" true (Json.member "pong" result = Json.Bool true)
  | Response.Error _ -> Alcotest.fail "ping failed"

let test_dispatch_analyze_matches_report () =
  let params =
    Request.analyze_params ~page:{|<script>var x = 1; x = x + 1;</script>|}
      ~seed:3 ()
  in
  let direct = Webracer.report_to_json (Api.analyze params) in
  match
    Api.dispatch { Request.id = Json.Null; trace = None; verb = Request.Analyze params }
  with
  | Response.Ok { result; _ } ->
      let scrub j =
        match j with
        | Json.Obj fields ->
            Json.Obj
              (List.map
                 (fun (k, v) -> if k = "wall_clock_s" then (k, Json.Int 0) else (k, v))
                 fields)
        | j -> j
      in
      check string_c "dispatch = report_to_json (modulo wall clock)"
        (Json.to_string (scrub direct))
        (Json.to_string (scrub result))
  | Response.Error _ -> Alcotest.fail "analyze failed"

let test_dispatch_explain_range () =
  let params = Request.analyze_params ~page:"<p>no races here</p>" () in
  match
    Api.dispatch
      {
        Request.id = Json.Null;
      trace = None;
        verb = Request.Explain { target = params; race = Some 5 };
      }
  with
  | Response.Error { code = Response.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "out-of-range explain must be a bad request"

let test_dispatch_stats_default () =
  match Api.dispatch { Request.id = Json.Null; trace = None; verb = Request.Stats } with
  | Response.Error { code = Response.Internal; _ } -> ()
  | _ -> Alcotest.fail "one-shot stats must be an internal error"

(* --- the daemon, end to end -------------------------------------------- *)

let spawn_daemon ?(jobs = 2) ?(queue_cap = 4) ?(cache_cap = 8) ?postmortem_dir
    ?(dump = fun () -> false) () =
  let stop = Atomic.make false in
  let port = Atomic.make 0 in
  let cfg =
    {
      (Daemon.default_config (Daemon.Tcp 0)) with
      jobs;
      queue_cap;
      cache_cap;
      postmortem_dir;
    }
  in
  let d =
    Domain.spawn (fun () ->
        Daemon.run
          ~stop:(fun () -> Atomic.get stop)
          ~dump
          ~on_ready:(fun addr ->
            match addr with
            | Daemon.Tcp p -> Atomic.set port p
            | Daemon.Unix_socket _ -> ())
          cfg)
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  if Atomic.get port = 0 then Alcotest.fail "daemon never became ready";
  (d, stop, Daemon.Tcp (Atomic.get port))

let request_ok client req =
  match Client.request client req with
  | Ok (Response.Ok { result; _ }) -> result
  | Ok (Response.Error { message; _ }) -> Alcotest.failf "request failed: %s" message
  | Error e -> Alcotest.failf "transport failed: %s" e

let test_daemon_end_to_end () =
  let d, stop, addr = spawn_daemon () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      (* ping echoes the id *)
      (match Client.request c { Request.id = Json.Int 42; trace = None; verb = Request.Ping } with
      | Ok (Response.Ok { id; result; _ }) ->
          check bool_c "id echoed" true (id = Json.Int 42);
          check bool_c "pong" true (Json.member "pong" result = Json.Bool true)
      | _ -> Alcotest.fail "ping over the wire");
      (* analyze matches the in-process pipeline *)
      let params =
        Request.analyze_params ~page:{|<script>var x = 1;</script>|} ~seed:5 ()
      in
      let result =
        request_ok c { Request.id = Json.Null; trace = None; verb = Request.Analyze params }
      in
      let direct = Webracer.report_to_json (Api.analyze params) in
      check bool_c "ops match one-shot run" true
        (Json.member "ops" result = Json.member "ops" direct);
      check bool_c "schema version present" true
        (Json.member "schema_version" result = Json.Int Wr_support.Schema.version);
      (* an identical request is a cache hit answered from the loop *)
      ignore (request_ok c { Request.id = Json.Null; trace = None; verb = Request.Analyze params });
      let stats = request_ok c { Request.id = Json.Null; trace = None; verb = Request.Stats } in
      check bool_c "one analysis ran" true
        (Json.member "analyses_run" stats = Json.Int 1);
      check bool_c "one cache hit" true
        (Json.member "hits" (Json.member "cache" stats) = Json.Int 1);
      (* malformed input answers bad_request and keeps the connection *)
      Client.send_line c "this is not json";
      (match Client.recv c with
      | Ok (Response.Error { code = Response.Bad_request; _ }) -> ()
      | _ -> Alcotest.fail "malformed line must answer bad_request");
      (match Client.request c { Request.id = Json.Int 1; trace = None; verb = Request.Ping } with
      | Ok (Response.Ok _) -> ()
      | _ -> Alcotest.fail "connection must survive a bad request");
      Client.close c)

let test_daemon_overload () =
  (* jobs 1 + queue 1: a pipelined burst processed in one read batch
     admits one job and sheds the rest as overload. *)
  let d, stop, addr = spawn_daemon ~jobs:1 ~queue_cap:1 ~cache_cap:0 () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      let page =
        {|<script>var s = 0; var i = 0; for (i = 0; i < 20000; i++) { s = s + i; }</script>|}
      in
      let params = Request.analyze_params ~page ~explore:false () in
      let burst = 6 in
      for i = 1 to burst do
        Client.send c { Request.id = Json.Int i; trace = None; verb = Request.Analyze params }
      done;
      let ok = ref 0 and overload = ref 0 and other = ref 0 in
      for _ = 1 to burst do
        match Client.recv c with
        | Ok (Response.Ok _) -> incr ok
        | Ok (Response.Error { code = Response.Overload; _ }) -> incr overload
        | _ -> incr other
      done;
      check int_c "every request answered" burst (!ok + !overload + !other);
      check int_c "no unexpected outcomes" 0 !other;
      check bool_c "some work admitted" true (!ok >= 1);
      check bool_c "backpressure engaged" true (!overload >= 1);
      Client.close c)

let test_daemon_drains_on_stop () =
  let d, stop, addr = spawn_daemon ~jobs:2 ~queue_cap:8 () in
  let c = Client.connect ~retry_for:5. addr in
  let params =
    Request.analyze_params
      ~page:{|<script>var s = 0; var i = 0; for (i = 0; i < 20000; i++) { s = s + i; }</script>|}
      ~explore:false ()
  in
  for i = 1 to 4 do
    Client.send c { Request.id = Json.Int i; trace = None; verb = Request.Analyze params }
  done;
  (* A trailing ping acts as a barrier: its (inline) answer proves the
     daemon has read and admitted everything queued before it. *)
  (match Client.request c { Request.id = Json.Int 99; trace = None; verb = Request.Ping } with
  | Ok (Response.Ok _) -> ()
  | _ -> Alcotest.fail "barrier ping");
  (* Stop now: the four in-flight analyses must still answer. *)
  Atomic.set stop true;
  let answered = ref 0 in
  for _ = 1 to 4 do
    match Client.recv c with Ok _ -> incr answered | Error _ -> ()
  done;
  let final = Domain.join d in
  Client.close c;
  check int_c "all in-flight requests answered during drain" 4 !answered;
  match Json.member "queue" final with
  | Json.Obj fields ->
      check bool_c "nothing left in flight" true
        (List.assoc "in_flight" fields = Json.Int 0)
  | _ -> Alcotest.fail "final stats must carry the queue gauge"

(* --- request tracing ---------------------------------------------------- *)

let test_trace_wire_compat () =
  (* Untraced requests and responses must stay byte-identical to the
     pre-tracing protocol: no "trace" key anywhere. *)
  let line =
    Request.to_line { Request.id = Json.Int 1; trace = None; verb = Request.Ping }
  in
  check bool_c "untraced request has no trace key" false
    (Astring.String.is_infix ~affix:"trace" line);
  let resp_line = Response.to_line (Response.ok ~id:(Json.Int 1) Json.Null) in
  check bool_c "untraced response has no trace key" false
    (Astring.String.is_infix ~affix:"trace" resp_line);
  (* A traced request round-trips its id. *)
  let traced =
    { Request.id = Json.Int 2; trace = Some "req-7"; verb = Request.Ping }
  in
  let decoded = decode_ok (Request.to_line traced) in
  check bool_c "trace id round-trips" true (decoded.Request.trace = Some "req-7");
  (* Empty trace ids are rejected, not silently accepted. *)
  let _, msg = decode_err {|{"id":1,"trace":"","verb":"ping"}|} in
  check bool_c "empty trace rejected" true (msg <> "")

let test_dispatch_echoes_trace () =
  (match
     Api.dispatch { Request.id = Json.Int 3; trace = Some "tr-x"; verb = Request.Ping }
   with
  | Response.Ok { trace; _ } -> check bool_c "ok echoes trace" true (trace = Some "tr-x")
  | Response.Error _ -> Alcotest.fail "ping dispatch");
  match
    Api.dispatch { Request.id = Json.Int 4; trace = None; verb = Request.Ping }
  with
  | Response.Ok { trace; _ } -> check bool_c "absent stays absent" true (trace = None)
  | Response.Error _ -> Alcotest.fail "ping dispatch"

let test_daemon_trace_and_metrics () =
  let d, stop, addr = spawn_daemon () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      let params =
        Request.analyze_params ~page:{|<script>var y = 2;</script>|} ~seed:3 ()
      in
      (* A traced analyze echoes the id on the wire. *)
      (match
         Client.request c
           { Request.id = Json.Int 1; trace = Some "e2e-1"; verb = Request.Analyze params }
       with
      | Ok (Response.Ok { trace; _ }) ->
          check bool_c "trace echoed over the wire" true (trace = Some "e2e-1")
      | _ -> Alcotest.fail "traced analyze");
      (* An untraced ping carries no trace on the wire. *)
      (match Client.request c { Request.id = Json.Int 2; trace = None; verb = Request.Ping } with
      | Ok (Response.Ok { trace; _ }) ->
          check bool_c "untraced stays untraced" true (trace = None)
      | _ -> Alcotest.fail "untraced ping");
      (* The metrics verb reports the analyze in its latency histograms
         plus queue/cache figures and a Prometheus rendering. *)
      let metrics =
        request_ok c { Request.id = Json.Null; trace = None; verb = Request.Metrics }
      in
      (match Json.member "latency" metrics with
      | Json.Obj stages ->
          List.iter
            (fun s ->
              if not (List.mem_assoc s stages) then Alcotest.failf "stage %S missing" s)
            [ "decode"; "queue"; "run"; "encode"; "total" ];
          (match List.assoc "run" stages with
          | Json.Obj run ->
              check bool_c "run stage recorded the analyze" true
                (match List.assoc_opt "count" run with
                | Some (Json.Int n) -> n >= 1
                | _ -> false);
              List.iter
                (fun k ->
                  if not (List.mem_assoc k run) then Alcotest.failf "run lacks %S" k)
                [ "p50"; "p95"; "p99"; "p999"; "max" ]
          | _ -> Alcotest.fail "run stage not an object")
      | _ -> Alcotest.fail "metrics lacks latency");
      (match Json.member "prometheus" metrics with
      | Json.String text ->
          check bool_c "prometheus text has latency summary" true
            (Astring.String.is_infix ~affix:"webracer_request_latency_seconds" text)
      | _ -> Alcotest.fail "metrics lacks prometheus text");
      (* stats gained high_water and hit_ratio. *)
      let stats = request_ok c { Request.id = Json.Null; trace = None; verb = Request.Stats } in
      (match Json.member "queue" stats with
      | Json.Obj q ->
          check bool_c "queue high-water tracked" true
            (match List.assoc_opt "high_water" q with
            | Some (Json.Int n) -> n >= 1
            | _ -> false)
      | _ -> Alcotest.fail "stats lacks queue");
      (match Json.member "cache" stats with
      | Json.Obj cache ->
          check bool_c "hit_ratio present" true (List.mem_assoc "hit_ratio" cache)
      | _ -> Alcotest.fail "stats lacks cache");
      Client.close c)

let suite =
  [
    Alcotest.test_case "request: ping round-trip" `Quick test_request_ping_roundtrip;
    Alcotest.test_case "request: analyze round-trip" `Quick test_request_analyze_roundtrip;
    Alcotest.test_case "request: wire defaults" `Quick test_request_defaults;
    Alcotest.test_case "request: replay/explain round-trip" `Quick
      test_request_replay_explain_roundtrip;
    Alcotest.test_case "request: validation errors" `Quick test_request_validation;
    Alcotest.test_case "response: round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "response: error taxonomy" `Quick test_error_codes;
    Alcotest.test_case "cache: key covers the whole config" `Quick test_cache_key;
    Alcotest.test_case "cache: LRU eviction + counters" `Quick test_cache_lru;
    Alcotest.test_case "api: ping" `Quick test_dispatch_ping;
    Alcotest.test_case "api: analyze = report_to_json" `Quick
      test_dispatch_analyze_matches_report;
    Alcotest.test_case "api: explain range check" `Quick test_dispatch_explain_range;
    Alcotest.test_case "api: stats needs a daemon" `Quick test_dispatch_stats_default;
    Alcotest.test_case "daemon: end to end over TCP" `Quick test_daemon_end_to_end;
    Alcotest.test_case "daemon: overload backpressure" `Quick test_daemon_overload;
    Alcotest.test_case "daemon: graceful drain" `Quick test_daemon_drains_on_stop;
    Alcotest.test_case "trace: wire compatibility" `Quick test_trace_wire_compat;
    Alcotest.test_case "trace: dispatch echoes" `Quick test_dispatch_echoes_trace;
    Alcotest.test_case "daemon: trace + metrics end to end" `Quick
      test_daemon_trace_and_metrics;
  ]

(* --- watch streaming and the flight recorder --------------------------- *)

let fresh_tmp_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wr-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let wait_for_file ?(timeout = 10.) pred dir =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let hit =
      match Sys.readdir dir with
      | names -> Array.find_opt pred names
      | exception Sys_error _ -> None
    in
    match hit with
    | Some name -> Filename.concat dir name
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "no matching file appeared in %s" dir
        else begin
          Unix.sleepf 0.02;
          go ()
        end
  in
  go ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One watch subscription streams [count] metrics snapshots, each a
   normal [ok] response echoing the subscription's id and trace, with
   an incrementing [seq]; the connection then serves plain
   request/response traffic again. *)
let test_daemon_watch_stream () =
  let d, stop, addr = spawn_daemon () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      Client.send c
        {
          Request.id = Json.Int 9;
          trace = Some "t-watch";
          verb = Request.Watch { Request.interval_s = 0.05; count = Some 2 };
        };
      let snap i =
        match Client.recv c with
        | Ok (Response.Ok { id; trace; result; _ }) ->
            check bool_c "subscription id echoed on every tick" true
              (id = Json.Int 9);
            check bool_c "trace echoed on every tick" true
              (trace = Some "t-watch");
            (match Json.member "seq" result with
            | Json.Int s -> check int_c "seq increments" i s
            | _ -> Alcotest.fail "snapshot lacks seq");
            List.iter
              (fun k ->
                match Json.member k result with
                | Json.Null -> Alcotest.failf "snapshot lacks %S" k
                | _ -> ())
              [ "requests_total"; "queue"; "cache"; "latency"; "fleet" ]
        | Ok (Response.Error { message; _ }) ->
            Alcotest.failf "watch tick errored: %s" message
        | Error e -> Alcotest.failf "watch transport failed: %s" e
      in
      snap 0;
      snap 1;
      (* The stream is exhausted; the connection is still a normal one. *)
      (match
         Client.request c { Request.id = Json.Int 10; trace = None; verb = Request.Ping }
       with
      | Ok (Response.Ok _) -> ()
      | _ -> Alcotest.fail "connection unusable after watch stream ended");
      Client.close c)

(* One-shot dispatch refuses watch: it only makes sense on a daemon. *)
let test_dispatch_rejects_watch () =
  match
    Api.dispatch
      {
        Request.id = Json.Int 1;
        trace = None;
        verb = Request.Watch { Request.interval_s = 1.; count = None };
      }
  with
  | Response.Error { code = Response.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "dispatch should reject watch with bad_request"

(* Killing a busy worker (via the fault-injection hook — domains cannot
   be killed from outside) must answer [internal] on the wire and dump a
   postmortem that names the in-flight request and its trace id. *)
let test_daemon_worker_crash_postmortem () =
  let dir = fresh_tmp_dir "pm-crash" in
  Unix.putenv "WEBRACER_FAULT_INJECT" "analyze";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "WEBRACER_FAULT_INJECT" "")
    (fun () ->
      let d, stop, addr = spawn_daemon ~postmortem_dir:dir () in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          ignore (Domain.join d))
        (fun () ->
          let c = Client.connect ~retry_for:5. addr in
          let params = Request.analyze_params ~page:"<p>boom</p>" () in
          (match
             Client.request c
               {
                 Request.id = Json.Int 1;
                 trace = Some "t-crash";
                 verb = Request.Analyze params;
               }
           with
          | Ok (Response.Error { code = Response.Internal; trace; _ }) ->
              check bool_c "crash response keeps the trace" true
                (trace = Some "t-crash")
          | Ok _ -> Alcotest.fail "expected an internal error"
          | Error e -> Alcotest.failf "transport failed: %s" e);
          let pm =
            wait_for_file
              (fun n ->
                Astring.String.is_infix ~affix:"worker-crash" n
                && Filename.check_suffix n ".jsonl")
              dir
          in
          let body = read_file pm in
          check bool_c "header names the reason" true
            (Astring.String.is_infix ~affix:{|"postmortem":"worker-crash"|} body);
          check bool_c "crashed request listed in flight, with trace id" true
            (Astring.String.is_infix ~affix:{|"trace_id":"t-crash"|} body);
          check bool_c "ring events carried the trace" true
            (Astring.String.is_infix ~affix:"request.start" body);
          (* The twin Chrome trace rides along. *)
          ignore
            (wait_for_file
               (fun n -> Filename.check_suffix n ".trace.json")
               dir);
          Client.close c))

(* The [dump] hook (the CLI wires SIGUSR2 to it) produces a postmortem
   from a healthy daemon. *)
let test_daemon_dump_hook_postmortem () =
  let dir = fresh_tmp_dir "pm-signal" in
  let want_dump = Atomic.make false in
  let d, stop, addr =
    spawn_daemon ~postmortem_dir:dir
      ~dump:(fun () -> Atomic.exchange want_dump false)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      let _ = request_ok c { Request.id = Json.Int 1; trace = None; verb = Request.Ping } in
      Atomic.set want_dump true;
      (* Any traffic wakes the select loop, which polls the hook. *)
      let _ = request_ok c { Request.id = Json.Int 2; trace = None; verb = Request.Ping } in
      let pm =
        wait_for_file
          (fun n ->
            Astring.String.is_infix ~affix:"signal" n
            && Filename.check_suffix n ".jsonl")
          dir
      in
      check bool_c "signal postmortem header" true
        (Astring.String.is_infix ~affix:{|"postmortem":"signal"|} (read_file pm));
      Client.close c)

let suite =
  suite
  @ [
      Alcotest.test_case "daemon: watch streams snapshots" `Quick
        test_daemon_watch_stream;
      Alcotest.test_case "api: watch needs a daemon" `Quick
        test_dispatch_rejects_watch;
      Alcotest.test_case "daemon: worker crash postmortem" `Quick
        test_daemon_worker_crash_postmortem;
      Alcotest.test_case "daemon: dump hook postmortem" `Quick
        test_daemon_dump_hook_postmortem;
    ]
