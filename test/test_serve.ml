(* Tests for Wr_serve: the Request/Response wire API, the dispatch path
   shared with the CLI, the LRU result cache, and a live daemon on a
   loopback TCP port (end to end: ping, analyze, cache hit, malformed
   request, overload backpressure, graceful drain). *)

module Json = Wr_support.Json
module Request = Wr_serve.Request
module Response = Wr_serve.Response
module Api = Wr_serve.Api
module Cache = Wr_serve.Cache
module Daemon = Wr_serve.Daemon
module Client = Wr_serve.Client

let check = Alcotest.check
let bool_c = Alcotest.bool
let int_c = Alcotest.int
let string_c = Alcotest.string

(* naive substring check, enough for asserting on error messages *)
let mentions needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Request ----------------------------------------------------------- *)

let decode_ok line =
  match Request.of_line line with
  | Ok req -> req
  | Error (_, msg) -> Alcotest.failf "decode failed: %s" msg

let decode_err line =
  match Request.of_line line with
  | Ok _ -> Alcotest.failf "expected a decode error for %s" line
  | Error (id, msg) -> (id, msg)

let test_request_ping_roundtrip () =
  let req = (Request.make ?trace:(None) ~id:(Json.Int 7) (Request.Ping)) in
  let req' = decode_ok (Request.to_line req) in
  check bool_c "id survives" true (req'.Request.id = Json.Int 7);
  check string_c "verb" "ping" (Request.verb_name req'.Request.verb)

let test_request_analyze_roundtrip () =
  let params =
    Request.analyze_params ~page:"<p>hi</p>"
      ~resources:[ ("a.js", "var x = 1;") ]
      ~seed:9 ~explore:false ~detector:Webracer.Config.Full_track
      ~hb:Wr_hb.Graph.Dfs ~time_limit:1234. ~dedup:false ()
  in
  let req = (Request.make ?trace:(None) ~id:(Json.String "abc") (Request.Analyze params)) in
  match (decode_ok (Request.to_line req)).Request.verb with
  | Request.Analyze p ->
      check string_c "page" "<p>hi</p>" p.Request.page;
      check bool_c "resources" true (p.Request.resources = [ ("a.js", "var x = 1;") ]);
      check int_c "seed" 9 p.Request.seed;
      check bool_c "explore" false p.Request.explore;
      check bool_c "detector" true (p.Request.detector = Webracer.Config.Full_track);
      check bool_c "hb" true (p.Request.hb = Wr_hb.Graph.Dfs);
      check bool_c "time_limit" true (p.Request.time_limit = 1234.);
      check bool_c "dedup" false p.Request.dedup
  | _ -> Alcotest.fail "expected analyze"

let test_request_defaults () =
  let req = decode_ok {|{"verb":"analyze","params":{"page":"<p>x</p>"}}|} in
  match req.Request.verb with
  | Request.Analyze p ->
      check int_c "seed" 0 p.Request.seed;
      check bool_c "explore" true p.Request.explore;
      check bool_c "dedup" true p.Request.dedup;
      check bool_c "detector" true (p.Request.detector = Webracer.Config.Last_access);
      check bool_c "time_limit" true (p.Request.time_limit = 60_000.)
  | _ -> Alcotest.fail "expected analyze"

let test_request_replay_explain_roundtrip () =
  let target = Request.analyze_params ~page:"<p>x</p>" () in
  let explain =
    Request.make ~id:Json.Null (Request.explain ~race:2 target)
  in
  (match (decode_ok (Request.to_line explain)).Request.verb with
  | Request.Explain { race = Some 2; _ } -> ()
  | _ -> Alcotest.fail "explain round-trip");
  let replay =
    Request.make ~id:Json.Null
      (Request.replay ~schedules:7 ~parse_delay:1.5 ~jobs:3 target)
  in
  match (decode_ok (Request.to_line replay)).Request.verb with
  | Request.Replay { schedules = 7; jobs = 3; parse_delay; _ } ->
      check bool_c "parse_delay" true (parse_delay = 1.5)
  | _ -> Alcotest.fail "replay round-trip"

let test_request_validation () =
  let _, msg = decode_err "][" in
  check bool_c "syntax error mentions JSON" true (mentions "invalid JSON" msg);
  let _, msg = decode_err {|{"verb":"frobnicate"}|} in
  check bool_c "unknown verb named" true (mentions "frobnicate" msg);
  let _, msg = decode_err {|{"verb":"analyze"}|} in
  check bool_c "missing page" true (mentions "page" msg);
  let id, _ = decode_err {|{"id":41,"verb":"analyze","params":{}}|} in
  check bool_c "id preserved in errors" true (id = Json.Int 41);
  let _, msg = decode_err {|{"schema_version":99,"verb":"ping"}|} in
  check bool_c "version mismatch named" true (mentions "schema_version 99" msg);
  let _, msg =
    decode_err {|{"verb":"analyze","params":{"page":"x","time_limit":-5}}|}
  in
  check bool_c "time_limit positive" true (mentions "time_limit" msg);
  let _, msg =
    decode_err {|{"verb":"explain","params":{"page":"x","race":0}}|}
  in
  check bool_c "race positive" true (mentions "race" msg);
  (match Request.of_line {|{"schema_version":1,"verb":"ping"}|} with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "explicit current version accepted")

(* --- Response ---------------------------------------------------------- *)

let test_response_roundtrip () =
  let ok = Response.ok ~id:(Json.Int 3) (Json.Obj [ ("pong", Json.Bool true) ]) in
  (match Response.of_line (Response.to_line ok) with
  | Ok r ->
      check bool_c "ok" true (Response.is_ok r);
      check bool_c "id" true (Response.id r = Json.Int 3)
  | Error e -> Alcotest.failf "ok round-trip: %s" e);
  let err = Response.error ~id:Json.Null Response.Overload "queue full" in
  match Response.of_line (Response.to_line err) with
  | Ok (Response.Error { code = Response.Overload; message; _ }) ->
      check string_c "message" "queue full" message
  | Ok _ -> Alcotest.fail "expected overload error"
  | Error e -> Alcotest.failf "error round-trip: %s" e

let test_error_codes () =
  List.iter
    (fun (code, name) ->
      check string_c "code name" name (Response.code_name code);
      check bool_c "code parse" true (Response.code_of_name name = Some code))
    [
      (Response.Bad_request, "bad_request");
      (Response.Timeout, "timeout");
      (Response.Overload, "overload");
      (Response.Internal, "internal");
    ];
  check bool_c "unknown code" true (Response.code_of_name "nope" = None)

(* --- Cache ------------------------------------------------------------- *)

let test_cache_key () =
  let p = Request.analyze_params ~page:"<p>x</p>" () in
  check string_c "key is stable" (Cache.key p) (Cache.key p);
  check int_c "key is a digest" 32 (String.length (Cache.key p));
  let different =
    [
      { p with Request.page = "<p>y</p>" };
      { p with Request.seed = 1 };
      { p with Request.resources = [ ("a.js", "1") ] };
      { p with Request.explore = false };
      { p with Request.detector = Webracer.Config.Full_track };
      { p with Request.hb = Wr_hb.Graph.Dfs };
      { p with Request.time_limit = 1. };
      { p with Request.dedup = false };
    ]
  in
  List.iteri
    (fun i q ->
      check bool_c (Printf.sprintf "variant %d differs" i) false
        (Cache.key p = Cache.key q))
    different

let test_cache_lru () =
  let c = Cache.create ~cap:2 () in
  Cache.store c "a" (Json.Int 1);
  Cache.store c "b" (Json.Int 2);
  check bool_c "a hit" true (Cache.find c "a" = Some (Json.Int 1));
  (* "b" is now least recently used; storing "c" evicts it. *)
  Cache.store c "c" (Json.Int 3);
  check bool_c "b evicted" true (Cache.find c "b" = None);
  check bool_c "a kept" true (Cache.find c "a" = Some (Json.Int 1));
  check int_c "hits" 2 (Cache.hits c);
  check int_c "misses" 1 (Cache.misses c);
  check int_c "length" 2 (Cache.length c)

(* --- Api dispatch ------------------------------------------------------ *)

let test_dispatch_ping () =
  match Api.dispatch (Request.make ?trace:(None) ~id:(Json.Int 1) (Request.Ping)) with
  | Response.Ok { result; _ } ->
      check bool_c "pong" true (Json.member "pong" result = Json.Bool true)
  | Response.Error _ -> Alcotest.fail "ping failed"

let test_dispatch_analyze_matches_report () =
  let params =
    Request.analyze_params ~page:{|<script>var x = 1; x = x + 1;</script>|}
      ~seed:3 ()
  in
  let direct = Webracer.report_to_json (Api.analyze params) in
  match
    Api.dispatch (Request.make ?trace:(None) ~id:(Json.Null) (Request.Analyze params))
  with
  | Response.Ok { result; _ } ->
      let scrub j =
        match j with
        | Json.Obj fields ->
            Json.Obj
              (List.map
                 (fun (k, v) -> if k = "wall_clock_s" then (k, Json.Int 0) else (k, v))
                 fields)
        | j -> j
      in
      check string_c "dispatch = report_to_json (modulo wall clock)"
        (Json.to_string (scrub direct))
        (Json.to_string (scrub result))
  | Response.Error _ -> Alcotest.fail "analyze failed"

let test_dispatch_explain_range () =
  let params = Request.analyze_params ~page:"<p>no races here</p>" () in
  match
    Api.dispatch
      (Request.make ~id:Json.Null (Request.explain ~race:5 params))
  with
  | Response.Error { code = Response.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "out-of-range explain must be a bad request"

let test_dispatch_stats_default () =
  match Api.dispatch (Request.make ?trace:(None) ~id:(Json.Null) (Request.Stats)) with
  | Response.Error { code = Response.Internal; _ } -> ()
  | _ -> Alcotest.fail "one-shot stats must be an internal error"

(* --- the daemon, end to end -------------------------------------------- *)

let spawn_daemon ?(jobs = 2) ?(shards = 1) ?(queue_cap = 4) ?(cache_cap = 8)
    ?(address = Daemon.Tcp 0) ?postmortem_dir ?(dump = fun () -> false) () =
  let stop = Atomic.make false in
  let ready : Daemon.address option Atomic.t = Atomic.make None in
  let cfg =
    {
      (Daemon.default_config address) with
      jobs;
      shards;
      queue_cap;
      cache_cap;
      postmortem_dir;
    }
  in
  let d =
    Domain.spawn (fun () ->
        Daemon.run
          ~stop:(fun () -> Atomic.get stop)
          ~dump
          ~on_ready:(fun addr -> Atomic.set ready (Some addr))
          cfg)
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while Atomic.get ready = None && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  match Atomic.get ready with
  | None -> Alcotest.fail "daemon never became ready"
  | Some addr -> (d, stop, addr)

let request_ok client req =
  match Client.request client req with
  | Ok (Response.Ok { result; _ }) -> result
  | Ok (Response.Error { message; _ }) -> Alcotest.failf "request failed: %s" message
  | Error e -> Alcotest.failf "transport failed: %s" e

let test_daemon_end_to_end () =
  let d, stop, addr = spawn_daemon () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      (* ping echoes the id *)
      (match Client.request c (Request.make ?trace:(None) ~id:(Json.Int 42) (Request.Ping)) with
      | Ok (Response.Ok { id; result; _ }) ->
          check bool_c "id echoed" true (id = Json.Int 42);
          check bool_c "pong" true (Json.member "pong" result = Json.Bool true)
      | _ -> Alcotest.fail "ping over the wire");
      (* analyze matches the in-process pipeline *)
      let params =
        Request.analyze_params ~page:{|<script>var x = 1;</script>|} ~seed:5 ()
      in
      let result =
        request_ok c (Request.make ?trace:(None) ~id:(Json.Null) (Request.Analyze params))
      in
      let direct = Webracer.report_to_json (Api.analyze params) in
      check bool_c "ops match one-shot run" true
        (Json.member "ops" result = Json.member "ops" direct);
      check bool_c "schema version present" true
        (Json.member "schema_version" result = Json.Int Wr_support.Schema.version);
      (* an identical request is a cache hit answered from the loop *)
      ignore (request_ok c (Request.make ?trace:(None) ~id:(Json.Null) (Request.Analyze params)));
      let stats = request_ok c (Request.make ?trace:(None) ~id:(Json.Null) (Request.Stats)) in
      check bool_c "one analysis ran" true
        (Json.member "analyses_run" stats = Json.Int 1);
      check bool_c "one cache hit" true
        (Json.member "hits" (Json.member "cache" stats) = Json.Int 1);
      (* malformed input answers bad_request and keeps the connection *)
      Client.send_line c "this is not json";
      (match Client.recv c with
      | Ok (Response.Error { code = Response.Bad_request; _ }) -> ()
      | _ -> Alcotest.fail "malformed line must answer bad_request");
      (match Client.request c (Request.make ?trace:(None) ~id:(Json.Int 1) (Request.Ping)) with
      | Ok (Response.Ok _) -> ()
      | _ -> Alcotest.fail "connection must survive a bad request");
      Client.close c)

let test_daemon_overload () =
  (* jobs 1 + queue 1: a pipelined burst processed in one read batch
     admits one job and sheds the rest as overload. *)
  let d, stop, addr = spawn_daemon ~jobs:1 ~queue_cap:1 ~cache_cap:0 () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      let page =
        {|<script>var s = 0; var i = 0; for (i = 0; i < 20000; i++) { s = s + i; }</script>|}
      in
      let params = Request.analyze_params ~page ~explore:false () in
      let burst = 6 in
      for i = 1 to burst do
        Client.send c (Request.make ?trace:(None) ~id:(Json.Int i) (Request.Analyze params))
      done;
      let ok = ref 0 and overload = ref 0 and other = ref 0 in
      for _ = 1 to burst do
        match Client.recv c with
        | Ok (Response.Ok _) -> incr ok
        | Ok (Response.Error { code = Response.Overload; _ }) -> incr overload
        | _ -> incr other
      done;
      check int_c "every request answered" burst (!ok + !overload + !other);
      check int_c "no unexpected outcomes" 0 !other;
      check bool_c "some work admitted" true (!ok >= 1);
      check bool_c "backpressure engaged" true (!overload >= 1);
      Client.close c)

let test_daemon_drains_on_stop () =
  let d, stop, addr = spawn_daemon ~jobs:2 ~queue_cap:8 () in
  let c = Client.connect ~retry_for:5. addr in
  let params =
    Request.analyze_params
      ~page:{|<script>var s = 0; var i = 0; for (i = 0; i < 20000; i++) { s = s + i; }</script>|}
      ~explore:false ()
  in
  for i = 1 to 4 do
    Client.send c (Request.make ?trace:(None) ~id:(Json.Int i) (Request.Analyze params))
  done;
  (* A trailing ping acts as a barrier: its (inline) answer proves the
     daemon has read and admitted everything queued before it. *)
  (match Client.request c (Request.make ?trace:(None) ~id:(Json.Int 99) (Request.Ping)) with
  | Ok (Response.Ok _) -> ()
  | _ -> Alcotest.fail "barrier ping");
  (* Stop now: the four in-flight analyses must still answer. *)
  Atomic.set stop true;
  let answered = ref 0 in
  for _ = 1 to 4 do
    match Client.recv c with Ok _ -> incr answered | Error _ -> ()
  done;
  let final = Domain.join d in
  Client.close c;
  check int_c "all in-flight requests answered during drain" 4 !answered;
  match Json.member "queue" final with
  | Json.Obj fields ->
      check bool_c "nothing left in flight" true
        (List.assoc "in_flight" fields = Json.Int 0)
  | _ -> Alcotest.fail "final stats must carry the queue gauge"

(* --- request tracing ---------------------------------------------------- *)

let test_trace_wire_compat () =
  (* Untraced requests and responses must stay byte-identical to the
     pre-tracing protocol: no "trace" key anywhere. *)
  let line =
    Request.to_line (Request.make ?trace:(None) ~id:(Json.Int 1) (Request.Ping))
  in
  check bool_c "untraced request has no trace key" false
    (Astring.String.is_infix ~affix:"trace" line);
  let resp_line = Response.to_line (Response.ok ~id:(Json.Int 1) Json.Null) in
  check bool_c "untraced response has no trace key" false
    (Astring.String.is_infix ~affix:"trace" resp_line);
  (* A traced request round-trips its id. *)
  let traced =
    (Request.make ?trace:(Some "req-7") ~id:(Json.Int 2) (Request.Ping))
  in
  let decoded = decode_ok (Request.to_line traced) in
  check bool_c "trace id round-trips" true (decoded.Request.trace = Some "req-7");
  (* Empty trace ids are rejected, not silently accepted. *)
  let _, msg = decode_err {|{"id":1,"trace":"","verb":"ping"}|} in
  check bool_c "empty trace rejected" true (msg <> "")

let test_dispatch_echoes_trace () =
  (match
     Api.dispatch (Request.make ?trace:(Some "tr-x") ~id:(Json.Int 3) (Request.Ping))
   with
  | Response.Ok { trace; _ } -> check bool_c "ok echoes trace" true (trace = Some "tr-x")
  | Response.Error _ -> Alcotest.fail "ping dispatch");
  match
    Api.dispatch (Request.make ?trace:(None) ~id:(Json.Int 4) (Request.Ping))
  with
  | Response.Ok { trace; _ } -> check bool_c "absent stays absent" true (trace = None)
  | Response.Error _ -> Alcotest.fail "ping dispatch"

let test_daemon_trace_and_metrics () =
  let d, stop, addr = spawn_daemon () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      let params =
        Request.analyze_params ~page:{|<script>var y = 2;</script>|} ~seed:3 ()
      in
      (* A traced analyze echoes the id on the wire. *)
      (match
         Client.request c
           (Request.make ?trace:(Some "e2e-1") ~id:(Json.Int 1) (Request.Analyze params))
       with
      | Ok (Response.Ok { trace; _ }) ->
          check bool_c "trace echoed over the wire" true (trace = Some "e2e-1")
      | _ -> Alcotest.fail "traced analyze");
      (* An untraced ping carries no trace on the wire. *)
      (match Client.request c (Request.make ?trace:(None) ~id:(Json.Int 2) (Request.Ping)) with
      | Ok (Response.Ok { trace; _ }) ->
          check bool_c "untraced stays untraced" true (trace = None)
      | _ -> Alcotest.fail "untraced ping");
      (* The metrics verb reports the analyze in its latency histograms
         plus queue/cache figures and a Prometheus rendering. *)
      let metrics =
        request_ok c (Request.make ?trace:(None) ~id:(Json.Null) (Request.Metrics))
      in
      (match Json.member "latency" metrics with
      | Json.Obj stages ->
          List.iter
            (fun s ->
              if not (List.mem_assoc s stages) then Alcotest.failf "stage %S missing" s)
            [ "decode"; "queue"; "run"; "encode"; "total" ];
          (match List.assoc "run" stages with
          | Json.Obj run ->
              check bool_c "run stage recorded the analyze" true
                (match List.assoc_opt "count" run with
                | Some (Json.Int n) -> n >= 1
                | _ -> false);
              List.iter
                (fun k ->
                  if not (List.mem_assoc k run) then Alcotest.failf "run lacks %S" k)
                [ "p50"; "p95"; "p99"; "p999"; "max" ]
          | _ -> Alcotest.fail "run stage not an object")
      | _ -> Alcotest.fail "metrics lacks latency");
      (match Json.member "prometheus" metrics with
      | Json.String text ->
          check bool_c "prometheus text has latency summary" true
            (Astring.String.is_infix ~affix:"webracer_request_latency_seconds" text)
      | _ -> Alcotest.fail "metrics lacks prometheus text");
      (* stats gained high_water and hit_ratio. *)
      let stats = request_ok c (Request.make ?trace:(None) ~id:(Json.Null) (Request.Stats)) in
      (match Json.member "queue" stats with
      | Json.Obj q ->
          check bool_c "queue high-water tracked" true
            (match List.assoc_opt "high_water" q with
            | Some (Json.Int n) -> n >= 1
            | _ -> false)
      | _ -> Alcotest.fail "stats lacks queue");
      (match Json.member "cache" stats with
      | Json.Obj cache ->
          check bool_c "hit_ratio present" true (List.mem_assoc "hit_ratio" cache)
      | _ -> Alcotest.fail "stats lacks cache");
      Client.close c)

let suite =
  [
    Alcotest.test_case "request: ping round-trip" `Quick test_request_ping_roundtrip;
    Alcotest.test_case "request: analyze round-trip" `Quick test_request_analyze_roundtrip;
    Alcotest.test_case "request: wire defaults" `Quick test_request_defaults;
    Alcotest.test_case "request: replay/explain round-trip" `Quick
      test_request_replay_explain_roundtrip;
    Alcotest.test_case "request: validation errors" `Quick test_request_validation;
    Alcotest.test_case "response: round-trip" `Quick test_response_roundtrip;
    Alcotest.test_case "response: error taxonomy" `Quick test_error_codes;
    Alcotest.test_case "cache: key covers the whole config" `Quick test_cache_key;
    Alcotest.test_case "cache: LRU eviction + counters" `Quick test_cache_lru;
    Alcotest.test_case "api: ping" `Quick test_dispatch_ping;
    Alcotest.test_case "api: analyze = report_to_json" `Quick
      test_dispatch_analyze_matches_report;
    Alcotest.test_case "api: explain range check" `Quick test_dispatch_explain_range;
    Alcotest.test_case "api: stats needs a daemon" `Quick test_dispatch_stats_default;
    Alcotest.test_case "daemon: end to end over TCP" `Quick test_daemon_end_to_end;
    Alcotest.test_case "daemon: overload backpressure" `Quick test_daemon_overload;
    Alcotest.test_case "daemon: graceful drain" `Quick test_daemon_drains_on_stop;
    Alcotest.test_case "trace: wire compatibility" `Quick test_trace_wire_compat;
    Alcotest.test_case "trace: dispatch echoes" `Quick test_dispatch_echoes_trace;
    Alcotest.test_case "daemon: trace + metrics end to end" `Quick
      test_daemon_trace_and_metrics;
  ]

(* --- watch streaming and the flight recorder --------------------------- *)

let fresh_tmp_dir =
  let n = ref 0 in
  fun tag ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "wr-%s-%d-%d" tag (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let wait_for_file ?(timeout = 10.) pred dir =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let hit =
      match Sys.readdir dir with
      | names -> Array.find_opt pred names
      | exception Sys_error _ -> None
    in
    match hit with
    | Some name -> Filename.concat dir name
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.failf "no matching file appeared in %s" dir
        else begin
          Unix.sleepf 0.02;
          go ()
        end
  in
  go ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One watch subscription streams [count] metrics snapshots, each a
   normal [ok] response echoing the subscription's id and trace, with
   an incrementing [seq]; the connection then serves plain
   request/response traffic again. *)
let test_daemon_watch_stream () =
  let d, stop, addr = spawn_daemon () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      Client.send c
        (Request.make ~trace:"t-watch" ~id:(Json.Int 9)
           (Request.watch ~interval_s:0.05 ~count:2 ()));
      let snap i =
        match Client.recv c with
        | Ok (Response.Ok { id; trace; result; _ }) ->
            check bool_c "subscription id echoed on every tick" true
              (id = Json.Int 9);
            check bool_c "trace echoed on every tick" true
              (trace = Some "t-watch");
            (match Json.member "seq" result with
            | Json.Int s -> check int_c "seq increments" i s
            | _ -> Alcotest.fail "snapshot lacks seq");
            List.iter
              (fun k ->
                match Json.member k result with
                | Json.Null -> Alcotest.failf "snapshot lacks %S" k
                | _ -> ())
              [ "requests_total"; "queue"; "cache"; "latency"; "fleet" ]
        | Ok (Response.Error { message; _ }) ->
            Alcotest.failf "watch tick errored: %s" message
        | Error e -> Alcotest.failf "watch transport failed: %s" e
      in
      snap 0;
      snap 1;
      (* The stream is exhausted; the connection is still a normal one. *)
      (match
         Client.request c (Request.make ?trace:(None) ~id:(Json.Int 10) (Request.Ping))
       with
      | Ok (Response.Ok _) -> ()
      | _ -> Alcotest.fail "connection unusable after watch stream ended");
      Client.close c)

(* One-shot dispatch refuses watch: it only makes sense on a daemon. *)
let test_dispatch_rejects_watch () =
  match
    Api.dispatch
      (Request.make ~id:(Json.Int 1) (Request.watch ~interval_s:1. ()))
  with
  | Response.Error { code = Response.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "dispatch should reject watch with bad_request"

(* Killing a busy worker (via the fault-injection hook — domains cannot
   be killed from outside) must answer [internal] on the wire and dump a
   postmortem that names the in-flight request and its trace id. *)
let test_daemon_worker_crash_postmortem () =
  let dir = fresh_tmp_dir "pm-crash" in
  Unix.putenv "WEBRACER_FAULT_INJECT" "analyze";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "WEBRACER_FAULT_INJECT" "")
    (fun () ->
      let d, stop, addr = spawn_daemon ~postmortem_dir:dir () in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          ignore (Domain.join d))
        (fun () ->
          let c = Client.connect ~retry_for:5. addr in
          let params = Request.analyze_params ~page:"<p>boom</p>" () in
          (match
             Client.request c
               (Request.make ?trace:(Some "t-crash") ~id:(Json.Int 1) (Request.Analyze params))
           with
          | Ok (Response.Error { code = Response.Internal; trace; _ }) ->
              check bool_c "crash response keeps the trace" true
                (trace = Some "t-crash")
          | Ok _ -> Alcotest.fail "expected an internal error"
          | Error e -> Alcotest.failf "transport failed: %s" e);
          let pm =
            wait_for_file
              (fun n ->
                Astring.String.is_infix ~affix:"worker-crash" n
                && Filename.check_suffix n ".jsonl")
              dir
          in
          let body = read_file pm in
          check bool_c "header names the reason" true
            (Astring.String.is_infix ~affix:{|"postmortem":"worker-crash"|} body);
          check bool_c "crashed request listed in flight, with trace id" true
            (Astring.String.is_infix ~affix:{|"trace_id":"t-crash"|} body);
          check bool_c "ring events carried the trace" true
            (Astring.String.is_infix ~affix:"request.start" body);
          (* The twin Chrome trace rides along. *)
          ignore
            (wait_for_file
               (fun n -> Filename.check_suffix n ".trace.json")
               dir);
          Client.close c))

(* The [dump] hook (the CLI wires SIGUSR2 to it) produces a postmortem
   from a healthy daemon. *)
let test_daemon_dump_hook_postmortem () =
  let dir = fresh_tmp_dir "pm-signal" in
  let want_dump = Atomic.make false in
  let d, stop, addr =
    spawn_daemon ~postmortem_dir:dir
      ~dump:(fun () -> Atomic.exchange want_dump false)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      let _ = request_ok c (Request.make ?trace:(None) ~id:(Json.Int 1) (Request.Ping)) in
      Atomic.set want_dump true;
      (* Any traffic wakes the select loop, which polls the hook. *)
      let _ = request_ok c (Request.make ?trace:(None) ~id:(Json.Int 2) (Request.Ping)) in
      let pm =
        wait_for_file
          (fun n ->
            Astring.String.is_infix ~affix:"signal" n
            && Filename.check_suffix n ".jsonl")
          dir
      in
      check bool_c "signal postmortem header" true
        (Astring.String.is_infix ~affix:{|"postmortem":"signal"|} (read_file pm));
      Client.close c)

let suite =
  suite
  @ [
      Alcotest.test_case "daemon: watch streams snapshots" `Quick
        test_daemon_watch_stream;
      Alcotest.test_case "api: watch needs a daemon" `Quick
        test_dispatch_rejects_watch;
      Alcotest.test_case "daemon: worker crash postmortem" `Quick
        test_daemon_worker_crash_postmortem;
      Alcotest.test_case "daemon: dump hook postmortem" `Quick
        test_daemon_dump_hook_postmortem;
    ]

(* --- schema v2, the sharded cache, HTTP and multi-shard serving --------- *)

module Http = Wr_serve.Http
module Schema = Wr_support.Schema

let test_schema_negotiation () =
  (* An untagged request speaks v1, the byte-stable default. *)
  let req = decode_ok {|{"id":1,"verb":"ping"}|} in
  check int_c "default generation" Schema.version req.Request.schema;
  let req = decode_ok {|{"schema_version":2,"id":1,"verb":"ping"}|} in
  check int_c "v2 negotiated" Schema.v2 req.Request.schema;
  (* Unknown generations are rejected up front, naming what we speak. *)
  let _, msg = decode_err {|{"schema_version":9,"id":1,"verb":"ping"}|} in
  check bool_c "unsupported version named" true (mentions "schema_version" msg);
  check bool_c "supported versions listed" true
    (mentions (Schema.supported_names ()) msg);
  (* The typed constructor enforces the same contract. *)
  match Request.make ~schema:9 ~id:(Json.Int 1) Request.Ping with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "make must reject an unsupported generation"

let test_response_v2_envelope () =
  let ok = Response.ok ~id:(Json.Int 1) (Json.Obj [ ("pong", Json.Bool true) ]) in
  let v1_line = Response.to_line ok in
  (* Stamping at v1 is a byte-level no-op: the pinned wire never moves. *)
  check string_c "v1 stamp is the identity" v1_line
    (Response.to_line (Response.stamp ~schema:Schema.version ~shard:3 ok));
  check bool_c "v1 carries no shard" false (mentions "shard" v1_line);
  let v2_line = Response.to_line (Response.stamp ~schema:Schema.v2 ~shard:3 ok) in
  check bool_c "v2 names its shard" true (mentions {|"shard":3|} v2_line);
  check bool_c "v2 tags its generation" true
    (mentions {|"schema_version":2|} v2_line);
  (* v2 error objects carry the HTTP-parity status; v1 ones must not. *)
  let overload = Response.error ~id:Json.Null Response.Overload "busy" in
  check bool_c "v1 error has no http_status" false
    (mentions "http_status" (Response.to_line overload));
  check bool_c "v2 error carries http_status" true
    (mentions {|"http_status":429|}
       (Response.to_line (Response.stamp ~schema:Schema.v2 ~shard:0 overload)));
  (* The taxonomy-to-status mapping is fixed. *)
  List.iter
    (fun (code, status) ->
      check int_c (Response.code_name code) status (Response.http_status code))
    [
      (Response.Bad_request, 400);
      (Response.Overload, 429);
      (Response.Timeout, 504);
      (Response.Internal, 500);
    ];
  (* And the v2 envelope round-trips through the client decoder. *)
  match Response.of_line v2_line with
  | Ok resp ->
      check int_c "decoded generation" Schema.v2 (Response.schema resp);
      check bool_c "decoded shard" true (Response.shard resp = Some 3)
  | Error e -> Alcotest.failf "v2 decode failed: %s" e

let test_cache_sharded () =
  let c = Cache.create ~shards:4 ~cap:256 () in
  check int_c "shard count" 4 (Cache.shards c);
  let keys =
    List.init 64 (fun i ->
        Cache.key (Request.analyze_params ~page:(Printf.sprintf "<p>%d</p>" i) ()))
  in
  List.iter (fun k -> Cache.store c k (Json.String k)) keys;
  (* The key hash spreads entries over more than one shard. *)
  let seen = Array.make 4 0 in
  List.iter (fun k -> seen.(Cache.shard_of c k) <- seen.(Cache.shard_of c k) + 1) keys;
  check bool_c "keys spread across shards" true
    (Array.to_list seen |> List.filter (fun n -> n > 0) |> List.length >= 2);
  check int_c "every key lands in a shard" 64 (Array.fold_left ( + ) 0 seen);
  (* Hits and misses accrue on the key's shard; the merged counters are
     exact sums, not approximations. *)
  List.iter
    (fun k -> check bool_c "stored key found" true (Cache.find c k <> None))
    keys;
  (match Cache.find c "0000000000000000ffffffffffffffff" with
  | None -> ()
  | Some _ -> Alcotest.fail "absent key must miss");
  check int_c "merged hits" 64 (Cache.hits c);
  check int_c "merged misses" 1 (Cache.misses c);
  check int_c "merged length" 64 (Cache.length c);
  let h, m, l =
    Array.fold_left
      (fun (h, m, l) (sh, sm, sl) -> (h + sh, m + sm, l + sl))
      (0, 0, 0) (Cache.shard_stats c)
  in
  check int_c "shard_stats hits sum to the merge" (Cache.hits c) h;
  check int_c "shard_stats misses sum to the merge" (Cache.misses c) m;
  check int_c "shard_stats lengths sum to the merge" (Cache.length c) l

let test_http_parser () =
  check bool_c "GET sniffs as http" true
    (Http.sniff "GET /v1/ping HTTP/1.1\r\n" = `Http);
  check bool_c "method prefix stays undecided" true (Http.sniff "PO" = `Undecided);
  check bool_c "json sniffs as line protocol" true (Http.sniff {|{"id":1}|} = `Line);
  let data = "GET /v1/ping HTTP/1.1\r\nHost: x\r\nX-Webracer-Trace: t1\r\n\r\n" in
  (match Http.parse data ~pos:0 with
  | `Req (r, pos) ->
      check string_c "method" "GET" r.Http.meth;
      check string_c "path" "/v1/ping" r.Http.path;
      check bool_c "header names lowercased" true
        (Http.header "x-webracer-trace" r = Some "t1");
      check int_c "whole request consumed" (String.length data) pos
  | _ -> Alcotest.fail "well-formed GET must parse");
  (match
     Http.parse "POST /v1/analyze HTTP/1.1\r\nContent-Length: 5\r\n\r\n12" ~pos:0
   with
  | `More -> ()
  | _ -> Alcotest.fail "a short body must wait for more bytes");
  (match Http.parse "NONSENSE\r\n\r\n" ~pos:0 with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "garbage must be a protocol error");
  (* Declared bodies above the cap are refused, not buffered. *)
  match
    Http.parse ~max_body:10
      "POST /v1/analyze HTTP/1.1\r\nContent-Length: 11\r\n\r\n" ~pos:0
  with
  | `Bad _ -> ()
  | _ -> Alcotest.fail "oversized Content-Length must be refused"

let test_http_route () =
  let req ?(headers = []) meth path body = { Http.meth; path; headers; body } in
  (match Http.route (req "GET" "/v1/ping" "") with
  | Ok j ->
      check bool_c "ping routes to the ping verb" true
        (Json.member "verb" j = Json.String "ping")
  | Error _ -> Alcotest.fail "GET /v1/ping must route");
  (* A POST body is the verb's params object; the wire document that
     comes out is exactly what the line protocol would decode. *)
  (match Http.route (req "POST" "/v1/analyze" {|{"page":"<p>x</p>"}|}) with
  | Ok j -> (
      check bool_c "analyze verb from the path" true
        (Json.member "verb" j = Json.String "analyze");
      match Request.of_json j with
      | Ok { Request.verb = Request.Analyze p; _ } ->
          (* The daemon bumps routed requests to v2 after decoding;
             route itself stays a pure wire-document translation. *)
          check string_c "params decoded" "<p>x</p>" p.Request.page
      | _ -> Alcotest.fail "routed document must decode as analyze")
  | Error _ -> Alcotest.fail "POST /v1/analyze must route");
  (* Trace header seeds the trace id when the body carries none. *)
  (match
     Http.route
       (req ~headers:[ ("x-webracer-trace", "t-h") ] "POST" "/v1/analyze"
          {|{"page":"<p>x</p>"}|})
   with
  | Ok j -> check bool_c "trace from header" true (Json.member "trace" j = Json.String "t-h")
  | Error _ -> Alcotest.fail "traced analyze must route");
  (match Http.route (req "GET" "/v1/nope" "") with
  | Error (404, _) -> ()
  | _ -> Alcotest.fail "unknown path is 404");
  (match Http.route (req "POST" "/v1/ping" "") with
  | Error (405, _) -> ()
  | _ -> Alcotest.fail "method mismatch is 405");
  match Http.route (req "POST" "/v1/analyze" "{") with
  | Error (400, _) -> ()
  | _ -> Alcotest.fail "unusable body is 400"

(* Both protocols on one live daemon: HTTP round trips speak v2 and map
   the taxonomy onto status codes; a raw connection to the same listener
   still speaks byte-stable v1. *)
let test_daemon_http_surface () =
  let d, stop, addr = spawn_daemon ~queue_cap:8 () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      (match Client.http_request c ~meth:"GET" ~path:"/v1/ping" () with
      | Ok (200, body) -> (
          match Response.of_line body with
          | Ok (Response.Ok { schema; shard = Some _; result; _ }) ->
              check int_c "http answers v2" Schema.v2 schema;
              check bool_c "pong" true (Json.member "pong" result = Json.Bool true)
          | _ -> Alcotest.fail "http ping body must be a v2 ok")
      | Ok (s, _) -> Alcotest.failf "http ping answered %d" s
      | Error e -> Alcotest.failf "http transport failed: %s" e);
      (* POST analyze agrees with the in-process pipeline. *)
      let params = Request.analyze_params ~page:{|<script>var x = 1;</script>|} () in
      let body = Json.to_string (Request.analyze_params_to_json params) in
      (match Client.http_request c ~meth:"POST" ~path:"/v1/analyze" ~body () with
      | Ok (200, b) -> (
          match Response.of_line b with
          | Ok (Response.Ok { result; _ }) ->
              let direct = Webracer.report_to_json (Api.analyze params) in
              check bool_c "ops match one-shot run" true
                (Json.member "ops" result = Json.member "ops" direct)
          | _ -> Alcotest.fail "http analyze body must be an ok")
      | Ok (s, _) -> Alcotest.failf "http analyze answered %d" s
      | Error e -> Alcotest.failf "http transport failed: %s" e);
      (* Routing errors surface as HTTP statuses with v2 error bodies. *)
      (match Client.http_request c ~meth:"GET" ~path:"/v1/nope" () with
      | Ok (404, b) ->
          check bool_c "404 body is a v2 error" true (mentions {|"ok":false|} b)
      | Ok (s, _) -> Alcotest.failf "unknown path answered %d" s
      | Error e -> Alcotest.failf "http transport failed: %s" e);
      (match Client.http_request c ~meth:"POST" ~path:"/v1/analyze" ~body:"{" () with
      | Ok (400, _) -> ()
      | Ok (s, _) -> Alcotest.failf "bad body answered %d" s
      | Error e -> Alcotest.failf "http transport failed: %s" e);
      (* The connection survives error responses; keep-alive holds. *)
      (match Client.http_request c ~meth:"GET" ~path:"/v1/stats" () with
      | Ok (200, b) ->
          check bool_c "stats names the shard count" true (mentions {|"shards"|} b)
      | _ -> Alcotest.fail "stats after errors must still answer");
      Client.close c;
      (* A raw connection to the same listener still speaks v1. *)
      let raw = Client.connect ~retry_for:5. addr in
      (match Client.request raw (Request.make ~id:(Json.Int 7) Request.Ping) with
      | Ok (Response.Ok { schema; shard; _ }) ->
          check int_c "raw default stays v1" Schema.version schema;
          check bool_c "raw v1 has no shard" true (shard = None)
      | _ -> Alcotest.fail "raw ping beside http");
      Client.close raw)

(* Backpressure maps onto 429 on the HTTP surface: with a zero-capacity
   queue every job verb sheds immediately and deterministically. *)
let test_daemon_http_overload () =
  let d, stop, addr = spawn_daemon ~queue_cap:0 () in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let c = Client.connect ~retry_for:5. addr in
      let body =
        Json.to_string
          (Request.analyze_params_to_json (Request.analyze_params ~page:"<p>x</p>" ()))
      in
      (match Client.http_request c ~meth:"POST" ~path:"/v1/analyze" ~body () with
      | Ok (429, b) ->
          check bool_c "429 body names overload" true (mentions {|"overload"|} b);
          check bool_c "429 body carries http_status" true
            (mentions {|"http_status":429|} b)
      | Ok (s, _) -> Alcotest.failf "overloaded analyze answered %d" s
      | Error e -> Alcotest.failf "http transport failed: %s" e);
      (* Inline verbs bypass the queue: ping still answers 200. *)
      (match Client.http_request c ~meth:"GET" ~path:"/v1/ping" () with
      | Ok (200, _) -> ()
      | _ -> Alcotest.fail "ping must bypass the queue");
      Client.close c)

(* Four event-loop shards behind one Unix socket (fanout accept hands
   connections out round-robin, so coverage is deterministic): every
   shard answers, v2 names the answering shard, and the shared cache
   makes the analyze results byte-identical wherever they ran. *)
let test_daemon_multi_shard () =
  let dir = fresh_tmp_dir "shards" in
  let d, stop, addr =
    spawn_daemon ~shards:4 ~queue_cap:16
      ~address:(Daemon.Unix_socket (Filename.concat dir "d.sock"))
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      ignore (Domain.join d))
    (fun () ->
      let params =
        Request.analyze_params ~page:{|<script>var x = 1;</script>|} ~seed:5 ()
      in
      let baseline = ref None in
      let shards_seen = Hashtbl.create 4 in
      for i = 0 to 7 do
        (* One fresh connection per request: the fanout round-robins
           connections, so eight requests visit each shard twice. *)
        let c = Client.connect ~retry_for:5. addr in
        (match
           Client.request c
             (Request.make ~schema:Schema.v2 ~id:(Json.Int i)
                (Request.analyze params))
         with
        | Ok (Response.Ok { shard = Some s; result; schema; _ }) ->
            check int_c "v2 envelope" Schema.v2 schema;
            Hashtbl.replace shards_seen s ();
            let body = Json.to_string result in
            (match !baseline with
            | None -> baseline := Some body
            | Some b -> check string_c "byte-identical across shards" b body)
        | Ok _ -> Alcotest.fail "expected a v2 ok naming its shard"
        | Error e -> Alcotest.failf "transport failed: %s" e);
        Client.close c
      done;
      check int_c "every shard answered" 4 (Hashtbl.length shards_seen);
      (* The shared cache served 7 of the 8 requests; its counters are
         lock-protected, so the merged stats are exact. *)
      let c = Client.connect ~retry_for:5. addr in
      let stats = request_ok c (Request.make ~id:Json.Null Request.Stats) in
      check bool_c "stats surface the shard count" true
        (Json.member "shards" stats = Json.Int 4);
      (match Json.member "cache" stats with
      | Json.Obj cache ->
          check bool_c "seven cache hits" true
            (List.assoc_opt "hits" cache = Some (Json.Int 7))
      | _ -> Alcotest.fail "stats lacks cache");
      Client.close c)

let suite =
  suite
  @ [
      Alcotest.test_case "schema: v2 negotiation" `Quick test_schema_negotiation;
      Alcotest.test_case "response: v2 envelope + status map" `Quick
        test_response_v2_envelope;
      Alcotest.test_case "cache: sharded counters merge exactly" `Quick
        test_cache_sharded;
      Alcotest.test_case "http: parser + sniffing" `Quick test_http_parser;
      Alcotest.test_case "http: routing table" `Quick test_http_route;
      Alcotest.test_case "daemon: http surface end to end" `Quick
        test_daemon_http_surface;
      Alcotest.test_case "daemon: http overload is 429" `Quick
        test_daemon_http_overload;
      Alcotest.test_case "daemon: four shards, one socket" `Quick
        test_daemon_multi_shard;
    ]
