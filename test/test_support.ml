(* Unit and property tests for Wr_support. *)

open Wr_support

let feq' = Alcotest.(check (float 1e-9))

let test_rng_determinism () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_bounds () =
  let r = Rng.of_int 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v;
    let f = Rng.float r 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.failf "float out of range: %f" f;
    let x = Rng.int_in_range r ~lo:5 ~hi:7 in
    if x < 5 || x > 7 then Alcotest.failf "range violation: %d" x
  done

let test_rng_split_independent () =
  let parent = Rng.of_int 3 in
  let child = Rng.split parent in
  let a = Rng.bits64 parent and b = Rng.bits64 child in
  if a = b then Alcotest.fail "split streams should diverge"

let test_bitset_basic () =
  let s = Bitset.create 10 in
  Alcotest.(check bool) "initially empty" false (Bitset.mem s 3);
  Bitset.add s 3;
  Bitset.add s 64;
  Bitset.add s 1000;
  Alcotest.(check bool) "mem 3" true (Bitset.mem s 3);
  Alcotest.(check bool) "mem 64" true (Bitset.mem s 64);
  Alcotest.(check bool) "mem 1000" true (Bitset.mem s 1000);
  Alcotest.(check bool) "mem 999" false (Bitset.mem s 999);
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal s);
  Bitset.remove s 64;
  Alcotest.(check bool) "removed" false (Bitset.mem s 64);
  Alcotest.(check int) "cardinal after remove" 2 (Bitset.cardinal s)

let test_bitset_union () =
  let a = Bitset.create 8 and b = Bitset.create 8 in
  Bitset.add a 1;
  Bitset.add b 2;
  Bitset.add b 200;
  Bitset.union_into ~into:a b;
  List.iter (fun i -> Alcotest.(check bool) (string_of_int i) true (Bitset.mem a i)) [ 1; 2; 200 ];
  Alcotest.(check int) "cardinal" 3 (Bitset.cardinal a)

let test_bitset_iter_order () =
  let s = Bitset.create 4 in
  List.iter (Bitset.add s) [ 17; 3; 99 ];
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "increasing order" [ 3; 17; 99 ] (List.rev !seen)

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset agrees with set model" ~count:200
    QCheck.(list (pair bool (int_bound 500)))
    (fun ops ->
      let s = Bitset.create 16 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      Hashtbl.fold (fun i () acc -> acc && Bitset.mem s i) model true
      && Bitset.cardinal s = Hashtbl.length model)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1; 2; 3 ]);
  Alcotest.(check (float 1e-9)) "median odd" 2. (Stats.median [ 3; 1; 2 ]);
  Alcotest.(check (float 1e-9)) "median even" 5.5 (Stats.median [ 4; 7; 5; 6 ]);
  Alcotest.(check int) "max" 7 (Stats.max [ 4; 7; 5 ]);
  Alcotest.(check int) "sum" 16 (Stats.sum [ 4; 7; 5 ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Stats.mean []);
  Alcotest.(check int) "max empty" 0 (Stats.max [])

let test_float_stats () =
  feq' "fsum" 6. (Stats.fsum [ 1.; 2.; 3. ]);
  feq' "fmean" 2. (Stats.fmean [ 1.; 2.; 3. ]);
  feq' "fmean empty" 0. (Stats.fmean []);
  feq' "fmax" 3.5 (Stats.fmax [ 1.; 3.5; 2. ]);
  feq' "fmax empty" 0. (Stats.fmax []);
  (* Percentiles with linear interpolation between closest ranks. *)
  let xs = [ 10.; 20.; 30.; 40. ] in
  feq' "p0 = min" 10. (Stats.fpercentile xs 0.);
  feq' "p100 = max" 40. (Stats.fpercentile xs 100.);
  feq' "p50 interpolates" 25. (Stats.fpercentile xs 50.);
  feq' "p75" 32.5 (Stats.fpercentile xs 75.);
  feq' "clamped above" 40. (Stats.fpercentile xs 150.);
  feq' "clamped below" 10. (Stats.fpercentile xs (-5.));
  feq' "empty" 0. (Stats.fpercentile [] 50.);
  feq' "singleton" 7. (Stats.fpercentile [ 7. ] 95.);
  feq' "fpercentile 50 = median" (Stats.median [ 4; 7; 5; 6 ])
    (Stats.fpercentile [ 4.; 7.; 5.; 6. ] 50.);
  feq' "fstddev" 2. (Stats.fstddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ]);
  feq' "fstddev singleton" 0. (Stats.fstddev [ 1. ]);
  (* median must sort numerically, not lexicographically/polymorphically *)
  feq' "median large ints" 1_000_000. (Stats.median [ 2_000_000; 3; 1_000_000 ])

let test_json () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("s", Json.String "x\"y\n");
        ("l", Json.List [ Json.Bool true; Json.Null ]);
        ("f", Json.Float 1.5);
      ]
  in
  Alcotest.(check string) "compact"
    {|{"a":1,"s":"x\"y\n","l":[true,null],"f":1.5}|} (Json.to_string j)

let test_table_render () =
  let s = Table.render ~header:[ "name"; "n" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ] in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count (incl. trailing)" 5 (List.length lines);
  Alcotest.(check string) "header" "name   n" (List.nth lines 0);
  Alcotest.(check string) "row alignment" "bb    22" (List.nth lines 3)

let suite =
  [
    Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: split" `Quick test_rng_split_independent;
    Alcotest.test_case "bitset: basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset: union" `Quick test_bitset_union;
    Alcotest.test_case "bitset: iter order" `Quick test_bitset_iter_order;
    QCheck_alcotest.to_alcotest prop_bitset_model;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "stats: float samples" `Quick test_float_stats;
    Alcotest.test_case "json" `Quick test_json;
    Alcotest.test_case "table" `Quick test_table_render;
  ]

(* --- JSON parsing -------------------------------------------------- *)

let test_json_parse_basics () =
  let open Json in
  Alcotest.(check bool) "scalar" true (of_string "42" = Int 42);
  Alcotest.(check bool) "float" true (of_string "1.5" = Float 1.5);
  Alcotest.(check bool) "negative exponent" true (of_string "-2e2" = Float (-200.));
  Alcotest.(check bool) "string escapes" true (of_string {|"a\n\"b"|} = String "a\n\"b");
  Alcotest.(check bool) "null/bool" true (of_string "[null, true, false]" = List [ Null; Bool true; Bool false ]);
  Alcotest.(check bool) "object" true
    (of_string {|{"a": 1, "b": [2]}|} = Obj [ ("a", Int 1); ("b", List [ Int 2 ]) ]);
  Alcotest.(check bool) "nested" true
    (of_string {|{"o": {"k": "v"}}|} = Obj [ ("o", Obj [ ("k", String "v") ]) ])

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted bad JSON %S" s
  in
  List.iter bad [ "{"; "[1,]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "1 2"; "" ]

let gen_json =
  let open QCheck.Gen in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 5) in
  let scalar =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000) 1000);
        map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 8));
      ]
  in
  let rec node depth =
    if depth = 0 then scalar
    else
      frequency
        [
          (3, scalar);
          (1, map (fun l -> Json.List l) (list_size (int_bound 3) (node (depth - 1))));
          ( 1,
            map
              (fun kvs ->
                (* Duplicate keys are legal JSON but not preserved; dedup. *)
                Json.Obj (List.sort_uniq (fun (a, _) (b, _) -> compare a b) kvs))
              (list_size (int_bound 3) (pair key (node (depth - 1)))) );
        ]
  in
  node 3

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json: of_string (to_string j) = j" ~count:300 (QCheck.make gen_json)
    (fun j ->
      (* Floats are excluded from the generator; Int/strings round-trip
         exactly. *)
      Json.of_string (Json.to_string j) = j)

let json_suite =
  [
    Alcotest.test_case "json: parse basics" `Quick test_json_parse_basics;
    Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
  ]

let suite = suite @ json_suite

(* --- remaining small-surface coverage ------------------------------- *)

let test_table_align_option () =
  let s =
    Table.render ~header:[ "l"; "r" ]
      ~align:[ Table.Left; Table.Left ]
      [ [ "x"; "1" ]; [ "yy"; "22" ] ]
  in
  Alcotest.(check bool) "left-aligned numbers" true
    (List.nth (String.split_on_char '\n' s) 2 = "x   1")

let test_rng_choose_shuffle () =
  let r = Rng.of_int 5 in
  let arr = [| 1; 2; 3; 4; 5 |] in
  let picked = Rng.choose r arr in
  Alcotest.(check bool) "choose picks a member" true (Array.exists (( = ) picked) arr);
  let arr2 = Array.copy arr in
  Rng.shuffle r arr2;
  Alcotest.(check bool) "shuffle permutes" true
    (List.sort compare (Array.to_list arr2) = Array.to_list arr);
  (match Rng.choose r [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty choose accepted");
  let e = Rng.exponential r ~mean:10. in
  Alcotest.(check bool) "exponential nonnegative" true (e >= 0.)

let coverage_suite =
  [
    Alcotest.test_case "table: align option" `Quick test_table_align_option;
    Alcotest.test_case "rng: choose/shuffle/exp" `Quick test_rng_choose_shuffle;
  ]

let suite = suite @ coverage_suite

(* --- domain worker pool ---------------------------------------------- *)

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  let doubled = Pool.map_jobs ~jobs:4 (fun x -> 2 * x) xs in
  Alcotest.(check (list int)) "input order preserved" (List.map (fun x -> 2 * x) xs) doubled

let test_pool_matches_sequential () =
  let xs = List.init 50 (fun i -> i * 7 mod 13) in
  let f x = x * x - x in
  Alcotest.(check (list int)) "jobs:4 = jobs:1"
    (Pool.map_jobs ~jobs:1 f xs)
    (Pool.map_jobs ~jobs:4 f xs)

let test_pool_reusable () =
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check int) "jobs" 3 (Pool.jobs p);
      Alcotest.(check (list int)) "first batch" [ 2; 4; 6 ] (Pool.map p (( * ) 2) [ 1; 2; 3 ]);
      Alcotest.(check (list int)) "second batch" [ 1; 4; 9 ]
        (Pool.map p (fun x -> x * x) [ 1; 2; 3 ]);
      Alcotest.(check (list string)) "empty input" [] (Pool.map p string_of_int []))

let test_pool_exception_propagates () =
  match Pool.map_jobs ~jobs:4 (fun x -> if x = 17 then failwith "boom" else x) (List.init 32 Fun.id) with
  | exception Failure m -> Alcotest.(check string) "first error re-raised" "boom" m
  | _ -> Alcotest.fail "expected the worker's exception to propagate"

let test_pool_parallel_work () =
  (* Workers really run on distinct domains: observable as distinct
     domain ids when parallelism is available, and correct results
     regardless. *)
  let ids = Pool.map_jobs ~jobs:4 (fun _ -> (Domain.self () :> int)) (List.init 64 Fun.id) in
  Alcotest.(check int) "all items ran" 64 (List.length ids);
  Alcotest.(check bool) "at least one domain id" true (List.length (List.sort_uniq compare ids) >= 1)

let pool_suite =
  [
    Alcotest.test_case "pool: map preserves order" `Quick test_pool_map_order;
    Alcotest.test_case "pool: parallel = sequential" `Quick test_pool_matches_sequential;
    Alcotest.test_case "pool: reusable across batches" `Quick test_pool_reusable;
    Alcotest.test_case "pool: exception propagates" `Quick test_pool_exception_propagates;
    Alcotest.test_case "pool: spreads over domains" `Quick test_pool_parallel_work;
  ]

let suite = suite @ pool_suite

(* --- Lru --------------------------------------------------------------- *)

module Lru = Wr_support.Lru

let test_lru_eviction_order () =
  let c = Lru.create ~cap:3 in
  List.iter (fun k -> Lru.add c k k) [ "a"; "b"; "c" ];
  Alcotest.(check int) "full" 3 (Lru.length c);
  (* touch "a": "b" becomes the eviction victim *)
  Alcotest.(check (option string)) "find a" (Some "a") (Lru.find c "a");
  Lru.add c "d" "d";
  Alcotest.(check bool) "b evicted" false (Lru.mem c "b");
  Alcotest.(check bool) "a kept" true (Lru.mem c "a");
  Alcotest.(check bool) "c kept" true (Lru.mem c "c");
  Alcotest.(check bool) "d added" true (Lru.mem c "d");
  Alcotest.(check int) "still full" 3 (Lru.length c)

let test_lru_overwrite_and_remove () =
  let c = Lru.create ~cap:2 in
  Lru.add c "k" "v1";
  Lru.add c "k" "v2";
  Alcotest.(check int) "overwrite is not growth" 1 (Lru.length c);
  Alcotest.(check (option string)) "latest value wins" (Some "v2") (Lru.find c "k");
  Lru.remove c "k";
  Lru.remove c "k";
  Alcotest.(check int) "remove is idempotent" 0 (Lru.length c);
  Lru.add c "x" "x";
  Lru.add c "y" "y";
  Lru.clear c;
  Alcotest.(check int) "clear empties" 0 (Lru.length c);
  Alcotest.(check int) "cap unchanged" 2 (Lru.cap c)

let test_lru_zero_cap () =
  let c = Lru.create ~cap:0 in
  Lru.add c "k" "v";
  Alcotest.(check int) "cap 0 never stores" 0 (Lru.length c);
  Alcotest.(check (option string)) "cap 0 never hits" None (Lru.find c "k")

let test_lru_churn () =
  (* A long mixed workload stays within cap and keeps exactly the most
     recently used keys. *)
  let cap = 8 in
  let c = Lru.create ~cap in
  for i = 0 to 999 do
    Lru.add c (string_of_int (i mod 20)) (string_of_int i)
  done;
  Alcotest.(check int) "length = cap after churn" cap (Lru.length c);
  (* last adds were keys (999-7..999) mod 20 *)
  for i = 992 to 999 do
    Alcotest.(check bool)
      (Printf.sprintf "key %d survives" (i mod 20))
      true
      (Lru.mem c (string_of_int (i mod 20)))
  done

(* --- Hash -------------------------------------------------------------- *)

module Hash = Wr_support.Hash

let test_hash_hex () =
  let h = Hash.hex "webracer" in
  Alcotest.(check int) "32 hex chars" 32 (String.length h);
  Alcotest.(check bool) "lowercase hex" true
    (String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) h);
  Alcotest.(check string) "deterministic" h (Hash.hex "webracer");
  Alcotest.(check bool) "content-sensitive" false (h = Hash.hex "webracer2")

let test_hash_of_parts_unambiguous () =
  Alcotest.(check bool) "length-prefixing disambiguates" false
    (Hash.of_parts [ "ab"; "c" ] = Hash.of_parts [ "a"; "bc" ]);
  Alcotest.(check bool) "arity matters" false
    (Hash.of_parts [ "x" ] = Hash.of_parts [ "x"; "" ]);
  Alcotest.(check string) "deterministic"
    (Hash.of_parts [ "a"; "b" ])
    (Hash.of_parts [ "a"; "b" ])

let cache_suite =
  [
    Alcotest.test_case "lru: eviction follows recency" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru: overwrite, remove, clear" `Quick test_lru_overwrite_and_remove;
    Alcotest.test_case "lru: cap 0 disables storage" `Quick test_lru_zero_cap;
    Alcotest.test_case "lru: bounded under churn" `Quick test_lru_churn;
    Alcotest.test_case "hash: hex digests" `Quick test_hash_hex;
    Alcotest.test_case "hash: of_parts is unambiguous" `Quick test_hash_of_parts_unambiguous;
  ]

let suite = suite @ cache_suite

(* --- HDR histogram ----------------------------------------------------- *)

module Histo = Wr_support.Stats.Histo

let feq msg ~tol expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %g within %g, got %g" msg expected tol actual

let test_histo_empty_singleton () =
  let h = Histo.create () in
  Alcotest.(check int) "empty count" 0 (Histo.count h);
  Alcotest.(check (float 0.)) "empty p50" 0. (Histo.percentile h 50.);
  Alcotest.(check (float 0.)) "empty mean" 0. (Histo.mean h);
  Histo.add h 3.25;
  Alcotest.(check int) "singleton count" 1 (Histo.count h);
  (* Every percentile of one sample is that sample (min/max clamping
     makes it exact despite bucketing). *)
  List.iter
    (fun p -> Alcotest.(check (float 0.)) "singleton percentile" 3.25 (Histo.percentile h p))
    [ 0.; 50.; 99.; 99.9; 100. ]

let test_histo_percentiles_skewed () =
  let h = Histo.create () in
  (* 999 fast samples at ~1ms, one slow outlier at 10s: the tail must
     show up in p999+ but not p50. *)
  for _ = 1 to 999 do
    Histo.add h 0.001
  done;
  Histo.add h 10.;
  feq "p50 near 1ms" ~tol:1e-4 0.001 (Histo.percentile h 50.);
  feq "p99 near 1ms" ~tol:1e-4 0.001 (Histo.percentile h 99.);
  feq "p99.9 still fast" ~tol:1e-4 0.001 (Histo.percentile h 99.9);
  Alcotest.(check (float 0.)) "p100 is the outlier" 10. (Histo.percentile h 100.);
  feq "mean pulled up" ~tol:1e-3 0.011 (Histo.mean h)

let test_histo_p999_small_sample () =
  (* With few samples, high percentiles must degrade to the maximum, not
     interpolate past it or read an empty bucket. *)
  let h = Histo.create () in
  List.iter (Histo.add h) [ 0.010; 0.020; 0.030 ];
  Alcotest.(check (float 0.)) "p999 of 3 samples = max" 0.030 (Histo.percentile h 99.9);
  Alcotest.(check (float 0.)) "p95 of 3 samples = max" 0.030 (Histo.percentile h 95.)

let test_histo_bucket_accuracy () =
  (* Log bucketing with 32 sub-buckets per octave: any percentile is
     within ~3% of the exact sample value. *)
  let h = Histo.create () in
  for i = 1 to 1000 do
    Histo.add h (float_of_int i /. 1000.)
  done;
  List.iter
    (fun p ->
      let exact = p /. 100. in
      let got = Histo.percentile h p in
      if Float.abs (got -. exact) /. exact > 0.03 then
        Alcotest.failf "p%g: %g more than 3%% from %g" p got exact)
    [ 10.; 50.; 90.; 99. ]

let test_histo_merge () =
  (* Per-domain histograms merged at read time must agree with one
     histogram fed every sample — same count, sum, extremes and
     percentiles (the telemetry merge path). *)
  let parts = List.init 4 (fun _ -> Histo.create ()) in
  let all = Histo.create () in
  List.iteri
    (fun d h ->
      for i = 1 to 250 do
        let v = float_of_int ((d * 250) + i) /. 100. in
        Histo.add h v;
        Histo.add all v
      done)
    parts;
  let merged =
    List.fold_left (fun acc h -> Histo.merge acc h) (Histo.create ()) parts
  in
  Alcotest.(check int) "count" (Histo.count all) (Histo.count merged);
  feq "sum" ~tol:1e-9 (Histo.sum all) (Histo.sum merged);
  Alcotest.(check (float 0.)) "min" (Histo.minimum all) (Histo.minimum merged);
  Alcotest.(check (float 0.)) "max" (Histo.maximum all) (Histo.maximum merged);
  List.iter
    (fun p ->
      Alcotest.(check (float 0.)) "percentile agrees" (Histo.percentile all p)
        (Histo.percentile merged p))
    [ 1.; 50.; 95.; 99.; 99.9 ];
  (* merge leaves its inputs untouched *)
  Alcotest.(check int) "part count intact" 250 (Histo.count (List.hd parts))

let test_histo_underflow () =
  let h = Histo.create () in
  List.iter (Histo.add h) [ -1.; 0.; 5. ];
  Alcotest.(check int) "all counted" 3 (Histo.count h);
  Alcotest.(check (float 0.)) "min is the negative" (-1.) (Histo.minimum h);
  Alcotest.(check (float 0.)) "p100" 5. (Histo.percentile h 100.)

let histo_suite =
  [
    Alcotest.test_case "histo: empty and singleton" `Quick test_histo_empty_singleton;
    Alcotest.test_case "histo: skewed tail percentiles" `Quick test_histo_percentiles_skewed;
    Alcotest.test_case "histo: p999 on small samples" `Quick test_histo_p999_small_sample;
    Alcotest.test_case "histo: bucket accuracy" `Quick test_histo_bucket_accuracy;
    Alcotest.test_case "histo: per-domain merge" `Quick test_histo_merge;
    Alcotest.test_case "histo: underflow bucket" `Quick test_histo_underflow;
  ]

let suite = suite @ histo_suite

(* --- pool profiling ---------------------------------------------------- *)

let test_pool_stats_accounting () =
  let p = Pool.create ~jobs:3 () in
  let xs = List.init 20 Fun.id in
  let _ = Pool.map p (fun x -> x * x) xs in
  Pool.close p;
  let st = Pool.stats p in
  Alcotest.(check int) "one row per domain" 3 (List.length st.Pool.per_domain);
  Alcotest.(check int) "submitted" 20 st.Pool.submitted;
  let total_tasks =
    List.fold_left (fun acc d -> acc + d.Pool.tasks) 0 st.Pool.per_domain
  in
  Alcotest.(check int) "every task charged to a domain" 20 total_tasks;
  List.iter
    (fun d ->
      Alcotest.(check bool) "non-negative queue wait" true (d.Pool.queue_wait_s >= 0.);
      Alcotest.(check bool) "non-negative run" true (d.Pool.run_s >= 0.))
    st.Pool.per_domain;
  (* The rendering includes every row and the summary counters. *)
  let rendered = Pool.render_stats st in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec at i = i + nl <= hl && (String.sub rendered i nl = needle || at (i + 1)) in
    at 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " in render") true (contains needle))
    [ "submitter"; "worker-1"; "worker-2"; "tasks submitted: 20" ]

let test_pool_stats_sequential () =
  (* jobs:1 charges everything to the submitter with zero queue wait. *)
  let p = Pool.create ~jobs:1 () in
  let _ = Pool.map p Fun.id (List.init 5 Fun.id) in
  Pool.close p;
  let st = Pool.stats p in
  (match st.Pool.per_domain with
  | [ d ] ->
      Alcotest.(check int) "all on submitter" 5 d.Pool.tasks;
      Alcotest.(check (float 0.)) "no queue wait" 0. d.Pool.queue_wait_s
  | rows -> Alcotest.failf "expected 1 domain row, got %d" (List.length rows));
  Alcotest.(check int) "submitted" 5 st.Pool.submitted

let test_pool_stats_exact_after_steal () =
  (* [min_workers] forces real spawned domains even on one-core hardware,
     and tiny chunks over very uneven work make stealing all but certain.
     However tasks migrate between deques, every item must be charged to
     exactly one lane: after [close] the per-lane task counts partition
     the batch. *)
  let n = 400 in
  let work x =
    let rounds = if x mod 13 = 0 then 50_000 else 500 in
    let acc = ref 0 in
    for i = 1 to rounds do
      acc := !acc + (i * x mod 7)
    done;
    !acc
  in
  let p = Pool.create ~min_workers:3 ~jobs:4 () in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.close p)
      (fun () -> Pool.map ~chunk:2 p work (List.init n Fun.id))
  in
  Alcotest.(check (list int)) "results deterministic in input order"
    (List.map work (List.init n Fun.id))
    results;
  let st = Pool.stats p in
  Alcotest.(check int) "submitted counts items" n st.Pool.submitted;
  let total_tasks =
    List.fold_left (fun acc d -> acc + d.Pool.tasks) 0 st.Pool.per_domain
  in
  Alcotest.(check int) "per-lane tasks partition the batch" n total_tasks;
  Alcotest.(check int) "stolen is the sum of per-lane steals"
    (List.fold_left (fun acc d -> acc + d.Pool.steals) 0 st.Pool.per_domain)
    st.Pool.stolen;
  List.iter
    (fun d ->
      Alcotest.(check bool) "non-negative queue wait" true (d.Pool.queue_wait_s >= 0.);
      Alcotest.(check bool) "non-negative idle" true (d.Pool.idle_s >= 0.))
    st.Pool.per_domain

let test_pool_chunking_invariance () =
  (* Results and stats-shape must not depend on the chunk size. *)
  let xs = List.init 97 (fun i -> i - 48) in
  let f x = (x * x) - (3 * x) in
  let expect = List.map f xs in
  List.iter
    (fun chunk ->
      let got =
        Pool.with_pool ~min_workers:2 ~jobs:3 (fun p -> Pool.map ~chunk p f xs)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "chunk=%d matches sequential" chunk)
        expect got)
    [ 1; 2; 7; 97; 1000 ]

let test_clock_monotonic () =
  (* The whole point of Clock over Unix.gettimeofday: deltas never go
     negative, so pool/daemon timing needs no clamping. *)
  let prev = ref (Clock.now ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now () in
    if t < !prev then Alcotest.failf "clock stepped backwards: %.9f < %.9f" t !prev;
    prev := t
  done;
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  Alcotest.(check bool) "ns reading non-decreasing" true (Int64.compare b a >= 0);
  Alcotest.(check bool) "plausible ns epoch (non-zero)" true (Int64.compare a 0L > 0)

let pool_stats_suite =
  [
    Alcotest.test_case "pool: stats account every task" `Quick test_pool_stats_accounting;
    Alcotest.test_case "pool: sequential stats" `Quick test_pool_stats_sequential;
    Alcotest.test_case "pool: stats exact after stealing" `Quick test_pool_stats_exact_after_steal;
    Alcotest.test_case "pool: chunking invariance" `Quick test_pool_chunking_invariance;
    Alcotest.test_case "clock: monotonic" `Quick test_clock_monotonic;
  ]

let suite = suite @ pool_stats_suite

(* --- ambient trace context --------------------------------------------- *)

module Log = Wr_support.Log

let test_log_trace_context () =
  Alcotest.(check (pair (option string) (option string)))
    "no ambient trace outside with_trace" (None, None) (Log.current_trace ());
  let inner =
    Log.with_trace ~trace_id:"t-1" ~span_id:"7" (fun () ->
        let outer = Log.current_trace () in
        let nested =
          Log.with_trace ~trace_id:"t-2" (fun () -> Log.current_trace ())
        in
        (outer, nested))
  in
  Alcotest.(check (pair (option string) (option string)))
    "ambient trace inside" (Some "t-1", Some "7") (fst inner);
  Alcotest.(check (pair (option string) (option string)))
    "innermost wins, span resets" (Some "t-2", None) (snd inner);
  Alcotest.(check (pair (option string) (option string)))
    "restored after" (None, None) (Log.current_trace ())

let test_log_trace_survives_exception () =
  (try
     Log.with_trace ~trace_id:"t-err" (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check (pair (option string) (option string)))
    "restored after exception" (None, None) (Log.current_trace ())

let trace_suite =
  [
    Alcotest.test_case "log: ambient trace context" `Quick test_log_trace_context;
    Alcotest.test_case "log: trace restored on exception" `Quick test_log_trace_survives_exception;
  ]

let suite = suite @ trace_suite

(* --- flight recorder --------------------------------------------------- *)

module Flight = Wr_support.Flight

(* A deterministic clock: 1., 2., 3., ... *)
let ticker () =
  let n = ref 0. in
  fun () ->
    n := !n +. 1.;
    !n

let with_flight ?(capacity = 4) ?clock f =
  Flight.configure ~capacity ?clock ();
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Flight.set_enabled false;
      Flight.configure ())
    f

let contains ~sub s =
  let sl = String.length sub and l = String.length s in
  let rec go i = i + sl <= l && (String.sub s i sl = sub || go (i + 1)) in
  sl = 0 || go 0

let test_flight_wraparound () =
  with_flight ~capacity:4 ~clock:(ticker ()) (fun () ->
      for i = 1 to 10 do
        Flight.record ~kind:"tick" [ ("i", Json.Int i) ]
      done;
      let evs = Flight.snapshot () in
      Alcotest.(check int) "ring keeps the last [capacity] events" 4
        (List.length evs);
      let is =
        List.map
          (fun (e : Flight.event) ->
            match List.assoc "i" e.fields with Json.Int i -> i | _ -> -1)
          evs
      in
      Alcotest.(check (list int)) "oldest first, newest retained" [ 7; 8; 9; 10 ]
        is)

let test_flight_virtual_clock_deterministic () =
  let run () =
    with_flight ~capacity:8 ~clock:(ticker ()) (fun () ->
        Flight.record ~kind:"request.start" ~trace:"t-flight" [];
        Flight.record ~kind:"request.end" [ ("outcome", Json.String "ok") ];
        Flight.to_jsonl (Flight.snapshot ()))
  in
  let one = run () and two = run () in
  Alcotest.(check string) "identical dumps under a virtual clock" one two;
  Alcotest.(check bool) "trace id survives into the dump" true
    (contains ~sub:"t-flight" one);
  Alcotest.(check bool) "virtual timestamps, not wall time" true
    (contains ~sub:"\"ts\":1" one)

let test_flight_disabled_and_reset () =
  Flight.configure ~capacity:4 ();
  Flight.record ~kind:"dropped" [];
  Alcotest.(check int) "record is a no-op while disabled" 0
    (List.length (Flight.snapshot ()));
  Flight.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Flight.set_enabled false)
    (fun () ->
      Flight.record ~kind:"kept" [];
      Alcotest.(check int) "recorded once enabled" 1
        (List.length (Flight.snapshot ()));
      Flight.reset ();
      Alcotest.(check int) "reset drops retained events" 0
        (List.length (Flight.snapshot ())))

let test_flight_log_tee () =
  with_flight ~capacity:8 (fun () ->
      (* Debug is below the default log level: nothing is emitted, but
         the flight recorder still captures it for postmortems. *)
      Log.with_trace ~trace_id:"t-tee" (fun () ->
          Log.debug "tee.probe" [ ("k", Json.String "v") ]);
      let evs = Flight.snapshot () in
      let tee =
        List.find_opt (fun (e : Flight.event) -> e.kind = "log.debug") evs
      in
      match tee with
      | None -> Alcotest.fail "log line not teed into the flight ring"
      | Some e ->
          Alcotest.(check (option string))
            "ambient trace id attached" (Some "t-tee") e.trace;
          Alcotest.(check bool) "event name captured" true
            (List.mem_assoc "event" e.fields))

let test_flight_chrome_trace () =
  with_flight ~capacity:8 ~clock:(ticker ()) (fun () ->
      Flight.record ~kind:"a" [];
      Flight.record ~kind:"b" [];
      match Flight.to_chrome_trace (Flight.snapshot ()) with
      | Json.Obj fields -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (Json.List evs) ->
              let instants =
                List.filter
                  (function
                    | Json.Obj f -> List.assoc_opt "ph" f = Some (Json.String "i")
                    | _ -> false)
                  evs
              in
              Alcotest.(check int) "one instant event per record" 2
                (List.length instants)
          | _ -> Alcotest.fail "traceEvents missing")
      | _ -> Alcotest.fail "chrome trace is not an object")

let flight_suite =
  [
    Alcotest.test_case "flight: ring wraparound" `Quick test_flight_wraparound;
    Alcotest.test_case "flight: deterministic under virtual clock" `Quick
      test_flight_virtual_clock_deterministic;
    Alcotest.test_case "flight: disabled no-op and reset" `Quick
      test_flight_disabled_and_reset;
    Alcotest.test_case "flight: log tee with ambient trace" `Quick
      test_flight_log_tee;
    Alcotest.test_case "flight: chrome trace instants" `Quick
      test_flight_chrome_trace;
  ]

let suite = suite @ flight_suite
