(* The triage pipeline against the adversarial pack's ground truth.

   Each scenario declares three flags: whether the baseline schedule
   leaves some prediction unconfirmed (baseline_gap), whether a directed
   schedule must close that gap (guided_confirms), and whether at least
   one prediction must be refuted with a certificate (refutable). The
   pack is engineered so all three combinations occur; these tests pin
   that engineering, and the soundness invariant (no dynamic race
   outside the prediction set) on every scenario. *)

module T = Wr_static.Triage
module Adv = Wr_sitegen.Adversarial

let run_scenario (s : Adv.scenario) =
  T.run ~seed:42 ~page:s.Adv.page ~resources:s.Adv.resources ()

let confirmed_beyond_baseline t =
  List.exists
    (fun (i : T.item) ->
      match i.T.classification with
      | T.Confirmed { schedule } -> schedule <> "baseline"
      | T.Refuted _ | T.Unconfirmed _ -> false)
    t.T.items

(* A baseline gap shows up after the full run as anything the baseline
   schedule did not confirm: a directed confirmation, a refutation, or
   an unconfirmed leftover. *)
let has_gap t =
  List.exists
    (fun (i : T.item) ->
      match i.T.classification with
      | T.Confirmed { schedule } -> schedule <> "baseline"
      | T.Refuted _ | T.Unconfirmed _ -> true)
    t.T.items

let check_scenario (s : Adv.scenario) () =
  let t = run_scenario s in
  Alcotest.(check bool) "sound: no unpredicted dynamic race" true (T.sound t);
  Alcotest.(check bool) "baseline gap matches ground truth" s.Adv.baseline_gap
    (has_gap t);
  Alcotest.(check bool)
    "guided confirmation matches ground truth" s.Adv.guided_confirms
    (confirmed_beyond_baseline t);
  Alcotest.(check bool)
    (Printf.sprintf "refutation matches ground truth (%d refuted)"
       (T.count `Refuted t))
    s.Adv.refutable
    (T.count `Refuted t > 0);
  (* Structural invariants of the report itself. *)
  Alcotest.(check bool) "confirmation index within schedules run" true
    (t.T.schedules_to_confirm <= t.T.schedules_run);
  Alcotest.(check bool) "budget respected" true
    (t.T.schedules_run <= t.T.budget);
  Alcotest.(check int) "every prediction classified"
    (List.length t.T.result.Wr_static.Predict.predictions)
    (List.length t.T.items)

(* The pack must contain genuine false positives for [predict --corpus]
   precision to dip below 100%, and the guided search must refute at
   least one of them with a certificate — the headline acceptance
   criterion. *)
let test_pack_has_certified_refutation () =
  let refuted =
    List.concat_map
      (fun (s : Adv.scenario) ->
        List.filter_map
          (fun (i : T.item) ->
            match i.T.classification with
            | T.Refuted c -> Some c
            | _ -> None)
          (run_scenario s).T.items)
      (Adv.pack ())
  in
  Alcotest.(check bool) "at least one certified refutation" true
    (List.length refuted >= 1);
  let has_kind pred = List.exists pred refuted in
  Alcotest.(check bool) "a dead side is certified" true
    (has_kind (function T.Side_never_observed _ -> true | _ -> false));
  Alcotest.(check bool) "disjoint cells are certified" true
    (has_kind (function T.Disjoint_cells _ -> true | _ -> false))

(* Guided search must beat blind enumeration on the pack: strictly
   fewer schedules to reach the same confirmations. *)
let test_guided_beats_blind_on_pack () =
  let totals =
    List.fold_left
      (fun (g, b) (s : Adv.scenario) ->
        let t = run_scenario s in
        let blind =
          T.blind_equivalent ~seed:42 ~page:s.Adv.page
            ~resources:s.Adv.resources t
        in
        Alcotest.(check bool)
          (s.Adv.name ^ ": blind reached the guided coverage")
          true blind.T.blind_matched;
        (g + t.T.schedules_to_confirm, b + blind.T.blind_schedules))
      (0, 0) (Adv.pack ())
  in
  let guided, blind = totals in
  Alcotest.(check bool)
    (Printf.sprintf "guided (%d) strictly beats blind (%d)" guided blind)
    true (guided < blind)

(* Directive derivation is deterministic and canonically labelled. *)
let test_directive_labels () =
  let d =
    [ (T.C_net, Wr_scheduler.Event_loop.Fast);
      (T.C_parse, Wr_scheduler.Event_loop.Slow) ]
  in
  Alcotest.(check string) "label is canonical" "net:fast+parse:slow"
    (T.directive_label d);
  let bias = T.bias_of d in
  Alcotest.(check bool) "bias slows parse" true
    (bias.Wr_scheduler.Event_loop.parse = Some Wr_scheduler.Event_loop.Slow);
  Alcotest.(check bool) "bias speeds net" true
    (bias.Wr_scheduler.Event_loop.net = Some Wr_scheduler.Event_loop.Fast);
  Alcotest.(check bool) "untouched channels stay neutral" true
    (bias.Wr_scheduler.Event_loop.timer = None)

(* The report is invariant in [jobs] (chunked classification, fixed
   chunk size): the parallel run must reproduce the sequential one. *)
let test_jobs_invariance () =
  let s =
    List.find
      (fun (s : Adv.scenario) -> s.Adv.name = "adv_computed")
      (Adv.pack ())
  in
  let seq = T.run ~seed:42 ~page:s.Adv.page ~resources:s.Adv.resources () in
  let par =
    T.run ~seed:42 ~jobs:4 ~page:s.Adv.page ~resources:s.Adv.resources ()
  in
  Alcotest.(check int) "same schedules run" seq.T.schedules_run
    par.T.schedules_run;
  Alcotest.(check int) "same confirmations" (T.count `Confirmed seq)
    (T.count `Confirmed par);
  Alcotest.(check int) "same refutations" (T.count `Refuted seq)
    (T.count `Refuted par)

let suite =
  List.map
    (fun (s : Adv.scenario) ->
      Alcotest.test_case ("pack: " ^ s.Adv.name) `Quick (check_scenario s))
    (Adv.pack ())
  @ [
      Alcotest.test_case "pack: certified refutations" `Quick
        test_pack_has_certified_refutation;
      Alcotest.test_case "guided beats blind on the pack" `Quick
        test_guided_beats_blind_on_pack;
      Alcotest.test_case "directive labels canonical" `Quick
        test_directive_labels;
      Alcotest.test_case "report invariant in jobs" `Quick test_jobs_invariance;
    ]
