(* Unit tests for the per-operation access-dedup front-end (Wr_detect.Dedup):
   duplicates swallowed, semantics preserved (Checked_read_first, op
   switches, flag/context mismatches), stats faithful. *)

open Wr_hb
open Wr_mem
open Wr_detect

let var ?(name = "x") cell = Location.Js_var { cell; name }

(* A probe detector that remembers every access it is fed, so tests can
   assert exactly what the dedup front-end forwarded. *)
let probe () =
  let log = ref [] in
  ( {
      Detector.name = "probe";
      record = (fun a -> log := a :: !log);
      races = (fun () -> []);
      accesses_seen = (fun () -> List.length !log);
    },
    fun () -> List.rev !log )

let access ?(flags = []) ?(context = "test") loc kind op =
  Access.make ~flags ~context loc kind op

let wrapped () =
  let inner, forwarded = probe () in
  let det, stats = Dedup.wrap inner in
  (det, stats, forwarded)

let test_duplicate_read_swallowed () =
  let det, stats, forwarded = wrapped () in
  for _ = 1 to 500 do
    det.Detector.record (access (var 1) `Read 7)
  done;
  Alcotest.(check int) "forwarded once" 1 (List.length (forwarded ()));
  let s = stats () in
  Alcotest.(check int) "seen" 500 s.Dedup.seen;
  Alcotest.(check int) "forwarded" 1 s.Dedup.forwarded;
  Alcotest.(check int) "swallowed" 499 (Dedup.swallowed s);
  Alcotest.(check int) "raw accesses_seen" 500 (det.Detector.accesses_seen ())

let test_duplicate_write_swallowed () =
  let det, _, forwarded = wrapped () in
  for _ = 1 to 10 do
    det.Detector.record (access (var 1) `Write 7)
  done;
  Alcotest.(check int) "forwarded once" 1 (List.length (forwarded ()))

let test_distinct_locations_all_forwarded () =
  let det, _, forwarded = wrapped () in
  for cell = 1 to 50 do
    det.Detector.record (access (var cell) `Read 7)
  done;
  Alcotest.(check int) "no false sharing" 50 (List.length (forwarded ()))

let test_read_then_write_forwarded () =
  (* The Checked_read_first transition needs the op's first write to reach
     the detector even though the op already accessed the location. *)
  let det, _, forwarded = wrapped () in
  det.Detector.record (access (var 1) `Read 7);
  det.Detector.record (access (var 1) `Read 7);
  det.Detector.record (access (var 1) `Write 7);
  match forwarded () with
  | [ r; w ] ->
      Alcotest.(check bool) "read first" true (r.Access.kind = `Read);
      Alcotest.(check bool) "write second" true (w.Access.kind = `Write)
  | l -> Alcotest.failf "expected [read; write], got %d accesses" (List.length l)

let test_write_read_write_all_forwarded () =
  (* The intervening read invalidates the cached write: the second write
     would acquire Checked_read_first inside the detector, so it must not
     be treated as a duplicate of the first. *)
  let det, _, forwarded = wrapped () in
  det.Detector.record (access (var 1) `Write 7);
  det.Detector.record (access (var 1) `Read 7);
  det.Detector.record (access (var 1) `Write 7);
  Alcotest.(check int) "all three forwarded" 3 (List.length (forwarded ()))

let test_flush_on_op_switch () =
  let det, _, forwarded = wrapped () in
  det.Detector.record (access (var 1) `Read 1);
  det.Detector.record (access (var 1) `Read 2);
  det.Detector.record (access (var 1) `Read 1);
  Alcotest.(check int) "each op switch re-forwards" 3 (List.length (forwarded ()))

let test_interleaved_op_other_location_keeps_cache () =
  (* Per-location epochs: an interleaved op touching a *different*
     location must not force re-forwarding of the outer op's repeats. *)
  let det, _, forwarded = wrapped () in
  det.Detector.record (access (var 1) `Read 1);
  det.Detector.record (access (var 2) `Read 2);
  det.Detector.record (access (var 1) `Read 1);
  Alcotest.(check int) "outer repeat still swallowed" 2 (List.length (forwarded ()))

let test_flag_mismatch_not_swallowed () =
  let det, _, forwarded = wrapped () in
  det.Detector.record (access (var 1) `Read 7);
  det.Detector.record (access ~flags:[ Access.Observed_miss ] (var 1) `Read 7);
  Alcotest.(check int) "differing flags forwarded" 2 (List.length (forwarded ()))

let test_context_mismatch_not_swallowed () =
  let det, _, forwarded = wrapped () in
  det.Detector.record (access ~context:"a" (var 1) `Read 7);
  det.Detector.record (access ~context:"b" (var 1) `Read 7);
  Alcotest.(check int) "differing context forwarded" 2 (List.length (forwarded ()))

(* --- semantics end-to-end against the real detector ------------------- *)

let last_access_with_dedup () =
  let g = Graph.create () in
  let inner = Last_access.create g in
  let det, _ = Dedup.wrap inner in
  (g, det)

let test_checked_read_first_preserved () =
  (* Op [a] reads then writes the location; a concurrent op [b] then reads
     it. The reported race's write must carry Checked_read_first exactly
     as it does without dedup. *)
  let run create =
    let g = Graph.create () in
    let det = create g in
    let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
    let loc = var 1 in
    det.Detector.record (Access.make ~context:"t" loc `Read a);
    det.Detector.record (Access.make ~context:"t" loc `Read a);
    det.Detector.record (Access.make ~context:"t" loc `Write a);
    det.Detector.record (Access.make ~context:"t" loc `Read b);
    List.map
      (fun (r : Race.t) ->
        ( r.Race.first.Access.op,
          r.Race.second.Access.op,
          Access.has_flag r.Race.first Access.Checked_read_first ))
      (det.Detector.races ())
  in
  let plain = run Last_access.create in
  let deduped = run (fun g -> fst (Dedup.wrap (Last_access.create g))) in
  Alcotest.(check bool) "same races, same flags" true (plain = deduped);
  match deduped with
  | [ (_, _, flagged) ] -> Alcotest.(check bool) "write is checked-read-first" true flagged
  | rs -> Alcotest.failf "expected 1 race, got %d" (List.length rs)

let test_race_still_detected_through_dedup () =
  let g, det = last_access_with_dedup () in
  let a = Graph.fresh g Op.Script ~label:"a" and b = Graph.fresh g Op.Script ~label:"b" in
  det.Detector.record (access (var 1) `Write a);
  det.Detector.record (access (var 1) `Write a);
  det.Detector.record (access (var 1) `Read b);
  Alcotest.(check int) "race survives dedup" 1 (List.length (det.Detector.races ()))

let test_full_track_equivalence () =
  (* Same access storm through full-track with and without the front-end:
     identical race reports. *)
  let storm det g =
    let ops = Array.init 8 (fun _ -> Graph.fresh g Op.Script ~label:"op") in
    for i = 0 to 999 do
      let loc = var (i mod 13) in
      let kind = if i mod 3 = 0 then `Write else `Read in
      det.Detector.record (access loc kind ops.(i mod 8))
    done;
    List.map
      (fun (r : Race.t) -> (Race.type_name r.Race.race_type, Location.to_string r.Race.loc))
      (det.Detector.races ())
  in
  let plain =
    let g = Graph.create () in
    storm (Full_track.create g) g
  in
  let deduped =
    let g = Graph.create () in
    storm (fst (Dedup.wrap (Full_track.create g))) g
  in
  Alcotest.(check bool) "identical race lists" true (plain = deduped)

let test_same_shape () =
  let a = access (var 1) `Read 7 in
  Alcotest.(check bool) "reflexive" true (Access.same_shape a (access (var 1) `Read 7));
  Alcotest.(check bool) "kind differs" false (Access.same_shape a (access (var 1) `Write 7));
  Alcotest.(check bool) "op differs" false (Access.same_shape a (access (var 1) `Read 8));
  Alcotest.(check bool) "loc differs" false (Access.same_shape a (access (var 2) `Read 7));
  Alcotest.(check bool) "flags differ" false
    (Access.same_shape a (access ~flags:[ Access.User_input ] (var 1) `Read 7))

let suite =
  [
    Alcotest.test_case "duplicate read swallowed" `Quick test_duplicate_read_swallowed;
    Alcotest.test_case "duplicate write swallowed" `Quick test_duplicate_write_swallowed;
    Alcotest.test_case "distinct locations forwarded" `Quick
      test_distinct_locations_all_forwarded;
    Alcotest.test_case "read-then-write forwarded" `Quick test_read_then_write_forwarded;
    Alcotest.test_case "write-read-write forwarded" `Quick
      test_write_read_write_all_forwarded;
    Alcotest.test_case "flush on op switch" `Quick test_flush_on_op_switch;
    Alcotest.test_case "interleaved op keeps other locations" `Quick
      test_interleaved_op_other_location_keeps_cache;
    Alcotest.test_case "flag mismatch forwarded" `Quick test_flag_mismatch_not_swallowed;
    Alcotest.test_case "context mismatch forwarded" `Quick
      test_context_mismatch_not_swallowed;
    Alcotest.test_case "checked-read-first preserved" `Quick
      test_checked_read_first_preserved;
    Alcotest.test_case "race detected through dedup" `Quick
      test_race_still_detected_through_dedup;
    Alcotest.test_case "full-track equivalence" `Quick test_full_track_equivalence;
    Alcotest.test_case "Access.same_shape" `Quick test_same_shape;
  ]
