let () =
  Alcotest.run "webracer"
    [
      ("support", Test_support.suite);
      ("telemetry", Test_telemetry.suite);
      ("hb", Test_hb.suite);
      ("mem", Test_mem.suite);
      ("detect", Test_detect.suite);
      ("dedup", Test_dedup.suite);
      ("explain", Test_explain.suite);
      ("js", Test_js.suite);
      ("js-conformance", Test_js_conformance.suite);
      ("regex", Test_regex.suite);
      ("html", Test_html.suite);
      ("scheduler", Test_scheduler.suite);
      ("dom", Test_dom.suite);
      ("events", Test_events.suite);
      ("browser", Test_browser.suite);
      ("browser-dynamic", Test_browser2.suite);
      ("hb-rules", Test_rules.suite);
      ("properties", Test_properties.suite);
      ("webracer", Test_webracer.suite);
      ("serve", Test_serve.suite);
      ("trace", Test_trace.suite);
      ("sitegen", Test_sitegen.suite);
      ("site-album", Test_site_album.suite);
      ("static", Test_static.suite);
      ("triage", Test_triage.suite);
    ]
