(* Unit tests for Wr_telemetry: span nesting and self-time accounting,
   counters, histograms, and exporter shape. A fake clock makes every
   duration deterministic. *)

module Telemetry = Wr_telemetry.Telemetry
open Wr_support

(* A controllable clock: [tick dt] advances it. Spans then have exact,
   assertable durations. *)
let fake_clock () =
  let now = ref 0. in
  let tick dt = now := !now +. dt in
  (Telemetry.create ~clock:(fun () -> !now) (), tick)

let phase_wall tm cat =
  match List.find_opt (fun (c, _, _) -> c = cat) (Telemetry.phase_totals tm) with
  | Some (_, w, _) -> w
  | None -> 0.

let feq = Alcotest.(check (float 1e-9))

let test_span_nesting_self_time () =
  let tm, tick = fake_clock () in
  Telemetry.with_span tm ~cat:"page" ~name:"root" (fun () ->
      tick 1.;
      Telemetry.with_span tm ~cat:"parse" ~name:"tokenize" (fun () -> tick 2.);
      tick 3.;
      Telemetry.with_span tm ~cat:"js" ~name:"eval" (fun () ->
          tick 4.;
          Telemetry.with_span tm ~cat:"dispatch" ~name:"handler" (fun () -> tick 5.));
      tick 1.);
  feq "total wall = root duration" 16. (Telemetry.total_wall tm);
  (* Self times: root 1+3+1, parse 2, js 4, dispatch 5. *)
  feq "root (page) self" 5. (phase_wall tm "page");
  feq "parse self" 2. (phase_wall tm "parse");
  feq "js self excludes nested dispatch" 4. (phase_wall tm "js");
  feq "dispatch self" 5. (phase_wall tm "dispatch");
  let phase_sum =
    List.fold_left (fun acc (_, w, _) -> acc +. w) 0. (Telemetry.phase_totals tm)
  in
  feq "phases partition the root exactly" (Telemetry.total_wall tm) phase_sum;
  Alcotest.(check int) "span count" 4 (Telemetry.n_spans tm)

let test_account_deducts_from_span () =
  let tm, tick = fake_clock () in
  Telemetry.with_span tm ~cat:"scheduler" ~name:"task" (fun () ->
      tick 1.;
      for _ = 1 to 3 do
        Telemetry.account tm ~cat:"detect" ~name:"record" (fun () -> tick 2.)
      done;
      tick 1.);
  feq "accounted time lands in its category" 6. (phase_wall tm "detect");
  feq "enclosing span keeps only its own time" 2. (phase_wall tm "scheduler");
  feq "still partitions the total" 8. (Telemetry.total_wall tm)

let test_span_exception_safety () =
  let tm, tick = fake_clock () in
  (try
     Telemetry.with_span tm ~cat:"page" ~name:"root" (fun () ->
         (try
            Telemetry.with_span tm ~cat:"js" ~name:"eval" (fun () ->
                tick 2.;
                failwith "script crash")
          with Failure _ -> ());
         tick 1.;
         failwith "outer")
   with Failure _ -> ());
  Alcotest.(check int) "both spans closed" 2 (Telemetry.n_spans tm);
  feq "inner duration captured" 2. (phase_wall tm "js");
  feq "outer self time captured" 1. (phase_wall tm "page")

let test_counters () =
  let tm, _ = fake_clock () in
  Telemetry.incr tm "a";
  Telemetry.incr tm ~by:4 "a";
  Telemetry.incr tm "b";
  Telemetry.set_counter tm "c" 42;
  Alcotest.(check int) "incr total" 5 (Telemetry.counter_value tm "a");
  Alcotest.(check int) "absent counter" 0 (Telemetry.counter_value tm "zzz");
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ ("a", 5); ("b", 1); ("c", 42) ]
    (Telemetry.counters tm)

let test_histograms () =
  let tm, _ = fake_clock () in
  for i = 1 to 100 do
    Telemetry.observe tm "depth" (float_of_int i)
  done;
  match Telemetry.histogram tm "depth" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      Alcotest.(check int) "count" 100 h.Telemetry.count;
      feq "mean" 50.5 h.Telemetry.mean;
      feq "p50" 50.5 h.Telemetry.p50;
      feq "p95" 95.05 h.Telemetry.p95;
      feq "max" 100. h.Telemetry.max

let test_disabled_noop () =
  let tm = Telemetry.disabled in
  Alcotest.(check bool) "disabled" false (Telemetry.enabled tm);
  let r = Telemetry.with_span tm ~cat:"x" ~name:"y" (fun () -> 7) in
  Alcotest.(check int) "with_span passes through" 7 r;
  Telemetry.incr tm "a";
  Telemetry.observe tm "h" 1.;
  Telemetry.mark tm ~cat:"x" "m";
  Alcotest.(check int) "records nothing" 0 (Telemetry.n_spans tm);
  Alcotest.(check int) "no counters" 0 (List.length (Telemetry.counters tm))

(* The Chrome trace must round-trip through the repo's own JSON parser and
   contain the right event kinds. *)
let test_chrome_trace_shape () =
  let tm, tick = fake_clock () in
  Telemetry.with_span tm ~cat:"parse" ~name:"tokenize" (fun () -> tick 1.);
  Telemetry.mark tm ~cat:"page" "DOMContentLoaded";
  Telemetry.incr tm "html.tokens";
  let j = Json.of_string (Json.to_string (Telemetry.to_chrome_trace tm)) in
  match j with
  | Json.Obj fields -> (
      (match List.assoc_opt "displayTimeUnit" fields with
      | Some (Json.String "ms") -> ()
      | _ -> Alcotest.fail "displayTimeUnit missing");
      match List.assoc_opt "traceEvents" fields with
      | Some (Json.List events) ->
          let ph e =
            match e with
            | Json.Obj f -> (
                match List.assoc_opt "ph" f with Some (Json.String p) -> p | _ -> "?")
            | _ -> "?"
          in
          let count p = List.length (List.filter (fun e -> ph e = p) events) in
          Alcotest.(check int) "one complete span event" 1 (count "X");
          Alcotest.(check int) "one instant event" 1 (count "i");
          Alcotest.(check int) "one counter event" 1 (count "C");
          Alcotest.(check bool) "metadata present" true (count "M" >= 1);
          let span =
            List.find (fun e -> ph e = "X") events |> function
            | Json.Obj f -> f
            | _ -> assert false
          in
          (match List.assoc_opt "dur" span with
          | Some (Json.Float d) -> feq "dur is 1s in us" 1e6 d
          | _ -> Alcotest.fail "dur missing");
          List.iter
            (fun key ->
              if not (List.mem_assoc key span) then Alcotest.failf "span lacks %S" key)
            [ "name"; "cat"; "ts"; "pid"; "tid" ]
      | _ -> Alcotest.fail "traceEvents missing")
  | _ -> Alcotest.fail "trace is not an object"

let test_metrics_json_shape () =
  let tm, tick = fake_clock () in
  Telemetry.with_span tm ~cat:"parse" ~name:"p" (fun () -> tick 2.);
  Telemetry.incr tm ~by:3 "html.tokens";
  Telemetry.observe tm "lat" 5.;
  match Json.of_string (Json.to_string (Telemetry.metrics_json tm)) with
  | Json.Obj fields ->
      List.iter
        (fun key ->
          if not (List.mem_assoc key fields) then Alcotest.failf "metrics lack %S" key)
        [ "total_wall_s"; "spans"; "phases"; "counters"; "histograms" ]
  | _ -> Alcotest.fail "metrics not an object"

(* End to end through the real pipeline: every acceptance phase shows up
   and the table's phases cover the analyze span. *)
let test_pipeline_phases () =
  let tm = Telemetry.create () in
  let page =
    {|<div id="a">x</div><script>var n = 0; document.getElementById("a").onclick = function () { n = n + 1; };</script>|}
  in
  ignore (Webracer.analyze (Webracer.config ~page ~telemetry:tm ()));
  let cats = List.map (fun (c, _, _) -> c) (Telemetry.phase_totals tm) in
  List.iter
    (fun c ->
      if not (List.mem c cats) then Alcotest.failf "phase %S missing from totals" c)
    [ "parse"; "js"; "dispatch"; "scheduler"; "detect"; "page" ];
  let phase_sum =
    List.fold_left (fun acc (_, w, _) -> acc +. w) 0. (Telemetry.phase_totals tm)
  in
  let total = Telemetry.total_wall tm in
  Alcotest.(check bool) "phases sum to within 10% of total" true
    (Float.abs (phase_sum -. total) <= 0.1 *. total);
  Alcotest.(check bool) "tasks counted" true
    (Telemetry.counter_value tm "scheduler.tasks" > 0);
  Alcotest.(check bool) "accesses counted" true
    (Telemetry.counter_value tm "detect.accesses" > 0);
  Alcotest.(check bool) "tokens counted" true
    (Telemetry.counter_value tm "html.tokens" > 0)

let suite =
  [
    Alcotest.test_case "span nesting and self time" `Quick test_span_nesting_self_time;
    Alcotest.test_case "account deducts from span" `Quick test_account_deducts_from_span;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "histograms" `Quick test_histograms;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "chrome trace shape" `Quick test_chrome_trace_shape;
    Alcotest.test_case "metrics json shape" `Quick test_metrics_json_shape;
    Alcotest.test_case "pipeline phase coverage" `Quick test_pipeline_phases;
  ]

(* --- domain safety ------------------------------------------------------ *)

(* Two pool tasks rendezvous on an atomic before either returns, forcing
   them onto distinct domains; both record into ONE shared context. The
   old telemetry had to be forced off under jobs > 1 — this pins the
   v2 guarantee instead. *)
let test_multi_domain_spans () =
  let tm = Telemetry.create () in
  let started = Atomic.make 0 in
  let task _ =
    Telemetry.with_span tm ~cat:"parse" ~name:"barrier" (fun () ->
        Atomic.incr started;
        (* Wait until the other task is running: both spans are live at
           once, which is only possible on two domains. *)
        let deadline = Unix.gettimeofday () +. 5. in
        while Atomic.get started < 2 && Unix.gettimeofday () < deadline do
          Domain.cpu_relax ()
        done;
        Telemetry.incr tm "barrier.hits";
        (Domain.self () :> int))
  in
  (* [min_workers] bypasses the hardware cap: this test is *about* two
     domains recording at once, so it needs a real spawned worker even on
     a single-core machine. *)
  let ids =
    Wr_support.Pool.with_pool ~min_workers:1 ~jobs:2 (fun p ->
        Wr_support.Pool.map p task [ 0; 1 ])
  in
  Alcotest.(check int) "both tasks ran" 2 (List.length (List.sort_uniq compare ids));
  Alcotest.(check int) "two recording domains" 2 (Telemetry.domains tm);
  Alcotest.(check int) "spans from both domains" 2 (Telemetry.n_spans tm);
  Alcotest.(check int) "counters merged across domains" 2
    (Telemetry.counter_value tm "barrier.hits");
  (* The Chrome trace names one thread row per recording domain. *)
  match Telemetry.to_chrome_trace tm with
  | Json.Obj fields -> (
      match List.assoc "traceEvents" fields with
      | Json.List events ->
          let tids =
            List.filter_map
              (function
                | Json.Obj e ->
                    (match (List.assoc_opt "ph" e, List.assoc_opt "tid" e) with
                    | Some (Json.String "X"), Some (Json.Int tid) -> Some tid
                    | _ -> None)
                | _ -> None)
              events
          in
          Alcotest.(check int) "span tids span two domains" 2
            (List.length (List.sort_uniq compare tids))
      | _ -> Alcotest.fail "traceEvents missing")
  | _ -> Alcotest.fail "trace is not an object"

(* Satellite of the same fix: analyze_many with jobs > 1 used to
   silently drop telemetry; now a shared context records every run. *)
let test_analyze_many_parallel_telemetry () =
  let tm = Telemetry.create () in
  let page = {|<script>var x = 1;</script>|} in
  let cfg = Webracer.config ~page ~telemetry:tm () in
  let merged = Webracer.analyze_many ~jobs:2 cfg ~seeds:[ 1; 2; 3; 4 ] in
  Alcotest.(check int) "all seeds analyzed" 4 (List.length merged.Webracer.runs);
  Alcotest.(check bool) "spans recorded under jobs:2" true (Telemetry.n_spans tm > 0);
  Alcotest.(check bool) "per-run counters accumulate" true
    (Telemetry.counter_value tm "hb.ops" > 0)

let suite =
  suite
  @ [
      Alcotest.test_case "multi-domain spans" `Quick test_multi_domain_spans;
      Alcotest.test_case "analyze_many keeps telemetry on" `Quick
        test_analyze_many_parallel_telemetry;
    ]

(* --- runtime probe (GC observability) ---------------------------------- *)

module Runtime_probe = Wr_telemetry.Runtime_probe

(* Ordered before any successful [start]: [inject_failure] only takes
   the failure path while no probe is running. *)
let test_probe_graceful_failure () =
  let p = Runtime_probe.start ~inject_failure:true () in
  Alcotest.(check bool) "failed start yields an inert probe" false
    (Runtime_probe.active p);
  Alcotest.(check bool) "inert probe is not the current one" true
    (Runtime_probe.current () = None);
  Alcotest.(check int) "inert probe has no stats" 0
    (List.length (Runtime_probe.stats p));
  (* Stopping an inert probe must be a no-op, not a crash. *)
  Runtime_probe.stop p;
  (match Runtime_probe.stats_json p with
  | Json.Obj fields ->
      Alcotest.(check bool) "stats_json names its source" true
        (List.assoc_opt "source" fields = Some (Json.String "runtime_events"))
  | _ -> Alcotest.fail "stats_json is not an object")

let test_probe_start_stop_idempotent () =
  let p1 = Runtime_probe.start () in
  let p2 = Runtime_probe.start () in
  Alcotest.(check bool) "second start returns the running probe" true (p1 == p2);
  Alcotest.(check bool) "probe is active" true (Runtime_probe.active p1);
  Runtime_probe.stop p1;
  Alcotest.(check bool) "inactive after stop" false (Runtime_probe.active p1);
  Alcotest.(check bool) "no current probe after stop" true
    (Runtime_probe.current () = None);
  Runtime_probe.stop p1;
  (* Restart after stop must work (collection was paused, not torn down). *)
  let p3 = Runtime_probe.start () in
  Alcotest.(check bool) "restart yields a fresh active probe" true
    (Runtime_probe.active p3 && not (p3 == p1));
  Runtime_probe.stop p3

(* Allocation-heavy fan-out over a 4-domain pool: every domain must
   show up in the probe's stats with a non-empty pause histogram, and
   the figures must come from runtime events, not [Gc.quick_stat]. *)
let test_probe_histograms_after_pool_churn () =
  let p = Runtime_probe.start ~interval_s:0.005 () in
  Alcotest.(check bool) "probe started" true (Runtime_probe.active p);
  let churn _ =
    (* Enough short-lived boxed floats to force many minor collections. *)
    let acc = ref [] in
    for i = 0 to 200_000 do
      acc := float_of_int i :: !acc;
      if i mod 10_000 = 0 then acc := []
    done;
    List.length !acc
  in
  let pool = Pool.create ~jobs:4 () in
  let _ =
    Fun.protect
      ~finally:(fun () -> Pool.close pool)
      (fun () -> Pool.map pool churn (List.init 16 Fun.id))
  in
  Runtime_probe.stop p;
  let rows = Runtime_probe.stats p in
  Alcotest.(check bool) "at least one domain recorded GC pauses" true
    (List.length rows > 0);
  List.iter
    (fun (r : Runtime_probe.domain_gc) ->
      Alcotest.(check bool)
        (Printf.sprintf "dom %d: non-empty pause histogram" r.dom)
        true
        (Stats.Histo.count r.pauses > 0);
      Alcotest.(check bool)
        (Printf.sprintf "dom %d: gc time accumulated" r.dom)
        true (r.gc_s > 0.))
    rows;
  let minors = List.fold_left (fun a r -> a + r.Runtime_probe.minor_pauses) 0 rows in
  Alcotest.(check bool) "minor collections observed across the fleet" true
    (minors > 0)

let test_probe_spans_reach_telemetry () =
  let tm = Telemetry.create () in
  let p = Runtime_probe.start ~telemetry:tm ~interval_s:0.005 () in
  let junk = ref [] in
  for i = 0 to 500_000 do
    junk := string_of_int i :: !junk;
    if i mod 10_000 = 0 then junk := []
  done;
  Runtime_probe.stop p;
  Alcotest.(check bool) "gc pause histogram exported" true
    (match Telemetry.metrics_json tm with
    | Json.Obj _ as j ->
        let s = Json.to_string j in
        let rec find i =
          i + 11 <= String.length s
          && (String.sub s i 11 = "gc.minor_pa" || find (i + 1))
        in
        find 0
    | _ -> false)

let probe_suite =
  [
    Alcotest.test_case "runtime probe: graceful failure is inert" `Quick
      test_probe_graceful_failure;
    Alcotest.test_case "runtime probe: start/stop idempotence" `Quick
      test_probe_start_stop_idempotent;
    Alcotest.test_case "runtime probe: histograms after jobs:4 churn" `Quick
      test_probe_histograms_after_pool_churn;
    Alcotest.test_case "runtime probe: pauses reach telemetry" `Quick
      test_probe_spans_reach_telemetry;
  ]

let suite = suite @ probe_suite
