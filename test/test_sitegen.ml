(* Fidelity tests: every pattern's detected races must match its planted
   ground truth exactly, and the corpus calibration must hit Table 1. *)

module Html = Wr_html.Html
module Race = Wr_detect.Race
open Wr_sitegen

let counts_of races =
  let h, f, v, d = Webracer.count_by_type races in
  (h, f, v, d)

let run_pattern ?(seed = 9) (p : Patterns.t) =
  let page = Html.to_string p.Patterns.nodes in
  let report =
    Webracer.analyze
      (Webracer.config ~page ~resources:p.Patterns.resources ~seed ~explore:true ())
  in
  report

let check_pattern name (p : Patterns.t) =
  let report = run_pattern p in
  let ty, expected_raw = p.Patterns.raw in
  let h, f, v, d = counts_of report.Webracer.races in
  let detected_raw =
    match ty with
    | Race.Html -> h
    | Race.Function_race -> f
    | Race.Variable -> v
    | Race.Event_dispatch -> d
  in
  Alcotest.(check int) (name ^ ": raw count") expected_raw detected_raw;
  let other_raw = h + f + v + d - detected_raw in
  Alcotest.(check int) (name ^ ": no cross-type noise") 0 other_raw;
  let h', f', v', d' = counts_of report.Webracer.filtered in
  Alcotest.(check int)
    (name ^ ": filtered count")
    p.Patterns.filtered
    (match ty with
    | Race.Html -> h'
    | Race.Function_race -> f'
    | Race.Variable -> v'
    | Race.Event_dispatch -> d');
  ignore (h', f', v', d')

let test_html_unguarded () = check_pattern "html_unguarded" (Patterns.html_unguarded ~idx:1)

let test_html_guarded () = check_pattern "html_guarded" (Patterns.html_guarded ~idx:1)

let test_html_polling () = check_pattern "html_polling" (Patterns.html_polling ~idx:1 ~n:7)

let test_function_hover () =
  check_pattern "function_hover harmful" (Patterns.function_hover ~idx:1 ~guarded:false);
  check_pattern "function_hover guarded" (Patterns.function_hover ~idx:2 ~guarded:true)

let test_form_hint () = check_pattern "form_hint" (Patterns.form_hint ~idx:1)

let test_form_checked () = check_pattern "form_checked" (Patterns.form_checked ~idx:1)

let test_form_two_writers () = check_pattern "form_two_writers" (Patterns.form_two_writers ~idx:1)

let test_gomez () = check_pattern "gomez" (Patterns.gomez ~idx:1 ~n:5)

let test_late_load_listener () =
  check_pattern "late_load_listener" (Patterns.late_load_listener ~idx:1)

let test_bulk_variable () = check_pattern "bulk_variable" (Patterns.bulk_variable ~idx:1 ~n:12)

let test_bulk_dispatch () = check_pattern "bulk_dispatch" (Patterns.bulk_dispatch ~idx:1 ~n:6)

let test_ajax_shared () = check_pattern "ajax_shared" (Patterns.ajax_shared ~idx:1)

let test_boilerplate_racefree () =
  let nodes, resources = Patterns.boilerplate ~name:"TestCo" in
  let report =
    Webracer.analyze
      (Webracer.config ~page:(Html.to_string nodes) ~resources ~seed:3 ~explore:true ())
  in
  Alcotest.(check int) "no races in chrome" 0 (List.length report.Webracer.races);
  Alcotest.(check int) "no crashes" 0 (List.length report.Webracer.crashes)

(* --- corpus calibration ------------------------------------------- *)

let test_corpus_shape () =
  let profiles = Profile.corpus () in
  Alcotest.(check int) "100 sites" 100 (List.length profiles);
  let filtered = List.map Profile.expected_filtered profiles in
  let sum f = List.fold_left (fun a c -> a + f c) 0 filtered in
  Alcotest.(check int) "Table 2 html total" 219 (sum (fun c -> c.Profile.html));
  Alcotest.(check int) "Table 2 function total" 37 (sum (fun c -> c.Profile.func));
  Alcotest.(check int) "Table 2 variable total" 8 (sum (fun c -> c.Profile.var));
  Alcotest.(check int) "Table 2 dispatch total" 91 (sum (fun c -> c.Profile.disp));
  let harmful = List.map Profile.expected_harmful profiles in
  let sumh f = List.fold_left (fun a c -> a + f c) 0 harmful in
  Alcotest.(check int) "harmful html" 32 (sumh (fun c -> c.Profile.html));
  Alcotest.(check int) "harmful function" 7 (sumh (fun c -> c.Profile.func));
  Alcotest.(check int) "harmful variable" 5 (sumh (fun c -> c.Profile.var));
  Alcotest.(check int) "harmful dispatch" 83 (sumh (fun c -> c.Profile.disp))

let test_corpus_raw_calibration () =
  (* Planted raw volumes should land on Table 1's statistics. *)
  let profiles = Profile.corpus () in
  let raw = List.map Profile.expected_raw profiles in
  let vars = List.map (fun c -> c.Profile.var) raw in
  let disps = List.map (fun c -> c.Profile.disp) raw in
  Alcotest.(check (float 0.5)) "variable mean ~22.4" 22.4 (Wr_support.Stats.mean vars);
  Alcotest.(check (float 0.6)) "variable median ~5.5" 5.5 (Wr_support.Stats.median vars);
  Alcotest.(check int) "variable max 269" 269 (Wr_support.Stats.max vars);
  Alcotest.(check (float 0.5)) "dispatch mean ~22.3" 22.3 (Wr_support.Stats.mean disps);
  Alcotest.(check (float 0.6)) "dispatch median ~7" 7.0 (Wr_support.Stats.median disps);
  Alcotest.(check int) "dispatch max 198" 198 (Wr_support.Stats.max disps);
  let htmls = List.map (fun c -> c.Profile.html) raw in
  Alcotest.(check int) "html max 112 (Ford)" 112 (Wr_support.Stats.max htmls);
  Alcotest.(check (float 0.3)) "html mean ~2.2" 2.2 (Wr_support.Stats.mean htmls);
  (* The emergent "All" row must land on the paper's 47.3 / 27.0 / 278. *)
  let alls = List.map Profile.total raw in
  Alcotest.(check (float 0.2)) "all mean ~47.3" 47.3 (Wr_support.Stats.mean alls);
  Alcotest.(check (float 0.1)) "all median 27" 27.0 (Wr_support.Stats.median alls);
  Alcotest.(check bool) "all max near 278" true
    (abs (Wr_support.Stats.max alls - 278) <= 10)

let test_corpus_full_fidelity_alt_seed () =
  (* Fidelity must be schedule-independent: a different seed, same truth. *)
  let outcomes = Eval.run_corpus ~seed:1234 () in
  let bad = List.filter (fun o -> not (Eval.fidelity o)) outcomes in
  Alcotest.(check (list string)) "all sites faithful at seed 1234" []
    (List.map (fun o -> o.Eval.profile.Profile.name) bad)

let test_corpus_full_fidelity () =
  (* Every one of the 100 sites: detected counts (raw and filtered) must
     equal the planted ground truth — the end-to-end soundness check that
     replaces the paper's manual inspection. *)
  let outcomes = Eval.run_corpus ~seed:42 () in
  let bad = List.filter (fun o -> not (Eval.fidelity o)) outcomes in
  Alcotest.(check (list string)) "all sites faithful (filtered)" []
    (List.map (fun o -> o.Eval.profile.Profile.name) bad);
  let raw_bad = List.filter (fun o -> o.Eval.raw <> o.Eval.expected_raw) outcomes in
  Alcotest.(check (list string)) "all sites faithful (raw)" []
    (List.map (fun o -> o.Eval.profile.Profile.name) raw_bad)

let test_site_fidelity site_name =
  let profiles = Profile.corpus () in
  let p = List.find (fun p -> p.Profile.name = site_name) profiles in
  let o = Eval.run_site ~seed:11 p in
  Alcotest.(check bool)
    (Printf.sprintf "%s: detected filtered = planted (got %d/%d/%d/%d want %d/%d/%d/%d)"
       site_name o.Eval.filtered.Profile.html o.Eval.filtered.Profile.func
       o.Eval.filtered.Profile.var o.Eval.filtered.Profile.disp
       o.Eval.expected_filtered.Profile.html o.Eval.expected_filtered.Profile.func
       o.Eval.expected_filtered.Profile.var o.Eval.expected_filtered.Profile.disp)
    true (Eval.fidelity o);
  Alcotest.(check bool)
    (Printf.sprintf "%s: detected raw = planted (got %d/%d/%d/%d want %d/%d/%d/%d)" site_name
       o.Eval.raw.Profile.html o.Eval.raw.Profile.func o.Eval.raw.Profile.var
       o.Eval.raw.Profile.disp o.Eval.expected_raw.Profile.html o.Eval.expected_raw.Profile.func
       o.Eval.expected_raw.Profile.var o.Eval.expected_raw.Profile.disp)
    true (o.Eval.raw = o.Eval.expected_raw)

let test_fidelity_allstate () = test_site_fidelity "Allstate"

let test_fidelity_ford () = test_site_fidelity "Ford"

let test_fidelity_metlife () = test_site_fidelity "MetLife"

let test_fidelity_valero () = test_site_fidelity "ValeroEnergy"

let test_fidelity_filler () = test_site_fidelity "Company01"

let outcome_projection (o : Eval.outcome) =
  (* Everything but [wall_clock_s], which legitimately varies run to run. *)
  ( o.Eval.profile.Profile.name,
    o.Eval.raw,
    o.Eval.filtered,
    o.Eval.ops,
    o.Eval.accesses,
    o.Eval.detector_records,
    o.Eval.crashes )

let test_corpus_parallel_deterministic () =
  (* The work-stealing fleet must be invisible in the results: same
     sites, same order, same counts across every jobs value AND across
     repeated runs at the same jobs value (stealing reshuffles which
     domain runs which chunk every time) — only the wall clock may
     differ. *)
  let run jobs = Eval.run_corpus ~seed:7 ~limit:6 ~jobs () in
  let reference = List.map outcome_projection (run 1) in
  Alcotest.(check int) "same number of sites" 6 (List.length reference);
  List.iter
    (fun jobs ->
      List.iter
        (fun attempt ->
          let again = List.map outcome_projection (run jobs) in
          Alcotest.(check bool)
            (Printf.sprintf "jobs:%d attempt %d outcomes = jobs:1 outcomes" jobs
               attempt)
            true
            (again = reference))
        [ 1; 2 ])
    [ 1; 2; 8 ]

let test_corpus_dedup_invisible () =
  (* Dedup changes detector_records, never verdicts or raw access counts. *)
  let strip (name, raw, filtered, ops, accesses, _records, crashes) =
    (name, raw, filtered, ops, accesses, crashes)
  in
  let on = Eval.run_corpus ~seed:7 ~limit:6 ~dedup:true () in
  let off = Eval.run_corpus ~seed:7 ~limit:6 ~dedup:false () in
  Alcotest.(check bool) "dedup on = dedup off (modulo detector_records)" true
    (List.map (fun o -> strip (outcome_projection o)) on
    = List.map (fun o -> strip (outcome_projection o)) off);
  let records l = List.fold_left (fun acc o -> acc + o.Eval.detector_records) 0 l in
  Alcotest.(check bool) "dedup forwards no more than raw" true (records on <= records off)

let suite =
  [
    Alcotest.test_case "pattern: html unguarded" `Quick test_html_unguarded;
    Alcotest.test_case "pattern: html guarded" `Quick test_html_guarded;
    Alcotest.test_case "pattern: html polling (Ford)" `Quick test_html_polling;
    Alcotest.test_case "pattern: function hover" `Quick test_function_hover;
    Alcotest.test_case "pattern: form hint (Southwest)" `Quick test_form_hint;
    Alcotest.test_case "pattern: form checked" `Quick test_form_checked;
    Alcotest.test_case "pattern: form two writers" `Quick test_form_two_writers;
    Alcotest.test_case "pattern: gomez" `Quick test_gomez;
    Alcotest.test_case "pattern: late load listener" `Quick test_late_load_listener;
    Alcotest.test_case "pattern: bulk variable" `Quick test_bulk_variable;
    Alcotest.test_case "pattern: bulk dispatch" `Quick test_bulk_dispatch;
    Alcotest.test_case "pattern: ajax shared" `Quick test_ajax_shared;
    Alcotest.test_case "boilerplate race-free" `Quick test_boilerplate_racefree;
    Alcotest.test_case "corpus: Table 2 totals" `Quick test_corpus_shape;
    Alcotest.test_case "corpus: Table 1 calibration" `Quick test_corpus_raw_calibration;
    Alcotest.test_case "corpus: full fidelity (100 sites)" `Slow test_corpus_full_fidelity;
    Alcotest.test_case "corpus: fidelity at another seed" `Slow test_corpus_full_fidelity_alt_seed;
    Alcotest.test_case "fidelity: Allstate" `Quick test_fidelity_allstate;
    Alcotest.test_case "fidelity: Ford" `Quick test_fidelity_ford;
    Alcotest.test_case "fidelity: MetLife" `Quick test_fidelity_metlife;
    Alcotest.test_case "fidelity: ValeroEnergy" `Quick test_fidelity_valero;
    Alcotest.test_case "fidelity: filler site" `Quick test_fidelity_filler;
    Alcotest.test_case "corpus: jobs:4 = jobs:1" `Quick test_corpus_parallel_deterministic;
    Alcotest.test_case "corpus: dedup invisible in verdicts" `Quick test_corpus_dedup_invisible;
  ]
