(* Tests for the race-witness subsystem: provenance chains, nearest
   common ancestors, the no-path frontier certificate and its verifier,
   DOT subgraph export, and the filter-attribution plumbing. *)

open Wr_hb

let mk () = Graph.create ~strategy:Graph.Closure ()

let op g label = Graph.fresh g Op.Script ~label

let race_between g ?(loc = Wr_mem.Location.Js_var { cell = 1; name = "x" }) a b =
  ignore g;
  Wr_detect.Race.make
    ~first:(Wr_mem.Access.make ~context:"w" loc `Write a)
    ~second:(Wr_mem.Access.make ~context:"r" loc `Read b)

(* 0 -> 1, 0 -> 2 -> 3: ops 1 and 3 race; backward from 3 pruned below 1
   reaches exactly {2, 3}. *)
let forked_graph () =
  let g = mk () in
  let r = op g "root" in
  let a = op g "left" in
  let b = op g "right" in
  let c = op g "right-child" in
  Graph.add_edge g r a;
  Graph.add_edge g r b;
  Graph.add_edge g b c;
  (g, r, a, b, c)

let test_frontier_minimal () =
  let g, _, a, b, c = forked_graph () in
  Alcotest.(check (list int)) "frontier = backward-reachable set" [ b; c ]
    (Wr_explain.frontier g ~older:a ~newer:c);
  let w = Wr_explain.of_race g (race_between g a c) in
  Alcotest.(check (list int)) "witness carries the minimal frontier" [ b; c ] w.Wr_explain.frontier;
  Alcotest.(check bool) "certificate passes" true (Wr_explain.verify g w)

let test_frontier_detects_order () =
  let g, r, _, _, c = forked_graph () in
  (* r happens-before c, so r itself lands in the pruned backward set. *)
  let f = Wr_explain.frontier g ~older:r ~newer:c in
  Alcotest.(check bool) "ordered pair: older is in its own frontier" true (List.mem r f)

let test_forged_frontier_rejected () =
  let g, _, a, _, c = forked_graph () in
  let w = Wr_explain.of_race g (race_between g a c) in
  (* Dropping any member breaks predecessor closure. *)
  List.iter
    (fun victim ->
      let forged =
        { w with Wr_explain.frontier = List.filter (fun n -> n <> victim) w.Wr_explain.frontier }
      in
      Alcotest.(check bool)
        (Printf.sprintf "frontier without #%d rejected" victim)
        false (Wr_explain.verify g forged))
    w.Wr_explain.frontier;
  (* An empty fabricated frontier is rejected outright. *)
  Alcotest.(check bool) "empty frontier rejected" false
    (Wr_explain.verify g { w with Wr_explain.frontier = [] })

let test_no_certificate_for_ordered_pair () =
  (* For a truly ordered pair no frontier can verify: closure forces the
     older op into the set, and membership checks then fail. *)
  let g, r, _, b, c = forked_graph () in
  let w = Wr_explain.of_race g (race_between g b c) in
  List.iter
    (fun frontier ->
      let forged = { w with Wr_explain.older = r; Wr_explain.frontier } in
      Alcotest.(check bool) "ordered pair never certifies" false (Wr_explain.verify g forged))
    [ [ c ]; [ b; c ]; [ r; b; c ]; [] ]

let test_forged_provenance_rejected () =
  let g, _, a, _, c = forked_graph () in
  let w = Wr_explain.of_race g (race_between g a c) in
  (* Skipping a link (root .. c without b) breaks the direct-edge check. *)
  let skip_middle =
    match w.Wr_explain.newer_provenance with
    | root :: _ :: rest -> root :: rest
    | chain -> chain
  in
  Alcotest.(check bool) "gapped chain rejected" false
    (Wr_explain.verify g { w with Wr_explain.newer_provenance = skip_middle });
  Alcotest.(check bool) "empty chain rejected" false
    (Wr_explain.verify g { w with Wr_explain.newer_provenance = [] });
  (* A chain rooted at a non-root op is rejected. *)
  let headless = List.tl w.Wr_explain.newer_provenance in
  Alcotest.(check bool) "non-root chain rejected" false
    (Wr_explain.verify g { w with Wr_explain.newer_provenance = headless })

let test_nca_diamond () =
  (* 0 -> 1 -> 3, 0 -> 2 -> 4: the fork point 0 is the nearest common
     ancestor of the two branch tips. *)
  let g = mk () in
  let r = op g "root" in
  let a = op g "a" and b = op g "b" in
  let a' = op g "a-child" and b' = op g "b-child" in
  Graph.add_edge g r a;
  Graph.add_edge g r b;
  Graph.add_edge g a a';
  Graph.add_edge g b b';
  Alcotest.(check (option int)) "nca of tips" (Some r)
    (Wr_explain.nearest_common_ancestor g a' b');
  (* A second, later fork dominates: r -> m -> {x, y} makes m nearest. *)
  let m = op g "mid" in
  let x = op g "x" and y = op g "y" in
  Graph.add_edge g r m;
  Graph.add_edge g m x;
  Graph.add_edge g m y;
  Alcotest.(check (option int)) "nearest fork wins" (Some m)
    (Wr_explain.nearest_common_ancestor g x y);
  (* Disconnected roots share no ancestor. *)
  let g2 = mk () in
  let p = op g2 "p" and q = op g2 "q" in
  Alcotest.(check (option int)) "no common ancestor" None
    (Wr_explain.nearest_common_ancestor g2 p q)

let test_forged_ancestor_rejected () =
  let g, _, a, b, c = forked_graph () in
  let w = Wr_explain.of_race g (race_between g a c) in
  Alcotest.(check (option int)) "true ancestor is the root" (Some 0) w.Wr_explain.common_ancestor;
  Alcotest.(check bool) "sibling is not an ancestor" false
    (Wr_explain.verify g { w with Wr_explain.common_ancestor = Some b })

let test_provenance_follows_creation_edges () =
  let g, r, a, b, c = forked_graph () in
  (* A later ordering edge a -> c must not displace c's creation edge b -> c. *)
  Graph.add_edge g a c;
  let ids chain = List.map (fun (i : Op.info) -> i.Op.id) chain in
  Alcotest.(check (list int)) "creation chain kept" [ r; b; c ] (ids (Wr_explain.provenance g c));
  Alcotest.(check (list int)) "chain of a root is itself" [ r ] (ids (Wr_explain.provenance g r))

let test_dot_subgraph_shape () =
  let g, _, a, _, c = forked_graph () in
  let _noise = op g "unrelated" in
  let w = Wr_explain.of_race g (race_between g a c) in
  let dot = Wr_explain.dot g w in
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "evidence node n%d present" id) true
        (contains (Printf.sprintf "n%d [" id) dot))
    [ 0; a; c ];
  Alcotest.(check bool) "unrelated op excluded" false (contains "n5 [" dot);
  Alcotest.(check bool) "provenance edge bold red" true
    (contains "n0 -> n1 [color=red" dot);
  Alcotest.(check bool) "valid graphviz wrapper" true
    (contains "digraph happens_before" dot)

let test_to_dot_edge_dedupe_and_highlight () =
  let g = mk () in
  let a = op g "a" and b = op g "b" in
  Graph.add_edge g a b;
  Graph.add_edge g a b;
  let dot = Graph.to_dot ~highlight_edges:[ (a, b) ] g in
  let count needle hay =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length hay then acc
      else go (i + 1) (if String.sub hay i n = needle then acc + 1 else acc)
    in
    go 0 0
  in
  Alcotest.(check int) "edge printed once, highlighted" 1 (count "n0 -> n1" dot);
  Alcotest.(check int) "highlight attrs present" 1 (count "n0 -> n1 [color=red" dot)

(* --- end to end through the browser ------------------------------------- *)

let fig4_page =
  {|<iframe id="i" src="sub.html" onload="doNextStep();"></iframe>
<div>a</div><div>b</div><div>c</div>
<script>function doNextStep() { return 1; }</script>|}

let test_witness_end_to_end () =
  let report =
    Webracer.analyze
      (Webracer.config ~page:fig4_page ~resources:[ ("sub.html", "<p>sub</p>") ]
         ~explore:false ())
  in
  let g = report.Webracer.hb_graph in
  Alcotest.(check bool) "found a race to explain" true (report.Webracer.races <> []);
  List.iter
    (fun race ->
      let w = Wr_explain.of_race g race in
      Alcotest.(check bool) "certificate passes on a real page" true (Wr_explain.verify g w);
      Alcotest.(check bool) "frontier excludes the older op" false
        (List.mem w.Wr_explain.older w.Wr_explain.frontier);
      Alcotest.(check bool) "frontier includes the newer op" true
        (List.mem w.Wr_explain.newer w.Wr_explain.frontier))
    report.Webracer.races

let test_report_json_carries_witness () =
  let report =
    Webracer.analyze
      (Webracer.config ~page:fig4_page ~resources:[ ("sub.html", "<p>sub</p>") ]
         ~explore:false ())
  in
  let open Wr_support.Json in
  match member "races" (Webracer.report_to_json report) with
  | List (Obj fields :: _) ->
      let witness = List.assoc "witness" fields in
      Alcotest.(check bool) "witness certified in JSON" true
        (match member "certified" witness with Bool b -> b | _ -> false);
      Alcotest.(check bool) "frontier non-empty" true
        (match member "frontier" witness with List (_ :: _) -> true | _ -> false)
  | _ -> Alcotest.fail "expected a non-empty race list"

let test_filter_attribution () =
  let report =
    Webracer.analyze
      (Webracer.config
         ~page:
           {|<input type="text" id="q" /><script>var el = document.getElementById("q");
if (el.value === "") { el.value = "hint"; }</script>|}
         ~explore:true ())
  in
  Alcotest.(check int) "one raw race" 1 (List.length report.Webracer.races);
  Alcotest.(check int) "suppressed by the form-field filter" 1
    (List.assoc Wr_detect.Filters.form_field_name report.Webracer.filter_counts);
  Alcotest.(check int) "single-dispatch untouched" 0
    (List.assoc Wr_detect.Filters.single_dispatch_name report.Webracer.filter_counts);
  match report.Webracer.suppressed with
  | [ (filter, race) ] ->
      Alcotest.(check string) "attributed to form-field" Wr_detect.Filters.form_field_name filter;
      Alcotest.(check bool) "the suppressed race is the raw one" true
        (List.memq race report.Webracer.races)
  | other -> Alcotest.fail (Printf.sprintf "expected 1 attribution, got %d" (List.length other))

let test_log_jsonl_sink () =
  let module L = Wr_support.Log in
  let path = Filename.temp_file "webracer_log" ".jsonl" in
  let saved = L.current_level () in
  L.open_sink_file path;
  L.set_level (Some L.Info);
  L.info "test.event" [ ("n", Wr_support.Json.Int 7) ];
  L.debug "test.hidden" [];
  L.close_sink ();
  L.set_level saved;
  let ic = open_in path in
  let line = input_line ic in
  let rest = try Some (input_line ic) with End_of_file -> None in
  close_in ic;
  Sys.remove path;
  let open Wr_support.Json in
  let obj = of_string line in
  Alcotest.(check string) "event name round-trips" "test.event" (to_str (member "event" obj));
  Alcotest.(check int) "field round-trips" 7 (to_int (member "n" obj));
  Alcotest.(check string) "level recorded" "info" (to_str (member "level" obj));
  Alcotest.(check bool) "debug event below threshold dropped" true (rest = None)

let test_log_level_parsing () =
  let module L = Wr_support.Log in
  Alcotest.(check bool) "warn parses" true (L.level_of_string "WARN" = Some L.Warn);
  Alcotest.(check bool) "off is disabled" true (L.level_of_string "off" = None);
  Alcotest.(check bool) "garbage is disabled" true (L.level_of_string "loud" = None);
  let saved = L.current_level () in
  L.set_level (Some L.Warn);
  Alcotest.(check bool) "error enabled at warn" true (L.enabled L.Error);
  Alcotest.(check bool) "info disabled at warn" false (L.enabled L.Info);
  L.set_level None;
  Alcotest.(check bool) "everything off" false (L.enabled L.Error);
  L.set_level saved

let suite =
  [
    Alcotest.test_case "frontier: minimal + accepted" `Quick test_frontier_minimal;
    Alcotest.test_case "frontier: ordered pair detected" `Quick test_frontier_detects_order;
    Alcotest.test_case "verify: forged frontier rejected" `Quick test_forged_frontier_rejected;
    Alcotest.test_case "verify: ordered pair never certifies" `Quick
      test_no_certificate_for_ordered_pair;
    Alcotest.test_case "verify: forged provenance rejected" `Quick
      test_forged_provenance_rejected;
    Alcotest.test_case "nca: diamond" `Quick test_nca_diamond;
    Alcotest.test_case "verify: forged ancestor rejected" `Quick test_forged_ancestor_rejected;
    Alcotest.test_case "provenance: creation edges" `Quick
      test_provenance_follows_creation_edges;
    Alcotest.test_case "dot: subgraph shape" `Quick test_dot_subgraph_shape;
    Alcotest.test_case "dot: edge dedupe + highlight" `Quick
      test_to_dot_edge_dedupe_and_highlight;
    Alcotest.test_case "witness: end to end" `Quick test_witness_end_to_end;
    Alcotest.test_case "witness: in report JSON" `Quick test_report_json_carries_witness;
    Alcotest.test_case "filters: suppression attribution" `Quick test_filter_attribution;
    Alcotest.test_case "log: jsonl sink" `Quick test_log_jsonl_sink;
    Alcotest.test_case "log: levels" `Quick test_log_level_parsing;
  ]
