(* Unit tests for the static predictor (Wr_static): effect extraction
   edge cases, MHP construction over the HB rules, and end-to-end
   prediction/lint on small pages. *)

open Wr_static
module E = Effects

let analyze_src ?(handler = false) src =
  let ctx = E.make_ctx ~doc:0 () in
  let prog = Wr_js.Parser.parse src in
  E.collect_globals ctx prog;
  if handler then E.analyze_handler ctx prog else E.analyze ctx prog

let has_eff (a : E.analysis) pred = List.exists pred a.E.effs

let writes a loc = has_eff a (fun e -> e.E.kind = E.Write && e.E.loc = loc)

let reads a loc = has_eff a (fun e -> e.E.kind = E.Read && e.E.loc = loc)

let check_eff msg b = Alcotest.(check bool) msg true b

let check_no_eff msg b = Alcotest.(check bool) msg false b

(* ------------------------------------------------------------------ *)
(* Effect extraction                                                   *)
(* ------------------------------------------------------------------ *)

let test_global_read_write () =
  let a = analyze_src "x = y;" in
  check_eff "writes x" (writes a (E.S_global (E.Lit "x")));
  check_eff "reads y" (reads a (E.S_global (E.Lit "y")))

let test_var_decl_writes_global () =
  let a = analyze_src "var total = 0;" in
  check_eff "var writes global" (writes a (E.S_global (E.Lit "total")))

let test_function_decl_effect () =
  let a = analyze_src "function f() { g = 1; }" in
  let decl =
    has_eff a (fun e ->
        e.E.kind = E.Write && e.E.loc = E.S_global (E.Lit "f") && e.E.func_decl)
  in
  check_eff "function decl is a func_decl write" decl;
  (* The body only runs when called: no write of g from the declaration. *)
  check_no_eff "body not analyzed until called" (writes a (E.S_global (E.Lit "g")))

let test_aliased_document_lookup () =
  (* The element flows through a local alias; the write is still
     attributed to the looked-up id. *)
  let a = analyze_src "var el = document.getElementById(\"panel\"); el.innerHTML = \"x\";" in
  let lookup =
    has_eff a (fun e ->
        e.E.kind = E.Read && e.E.loc = E.S_id { doc = 0; id = E.Lit "panel" } && e.E.may_miss)
  in
  check_eff "id lookup read, may observe absence" lookup;
  check_eff "innerHTML widens to whole-document write" (writes a (E.S_dom_any 0))

let test_computed_member_forces_unknown () =
  let a = analyze_src "var el = document.getElementById(\"a\"); el[key] = 1;" in
  let target = E.T_elem { doc = 0; id = E.Lit "a" } in
  check_eff "computed prop write widens"
    (writes a (E.S_prop { target; prop = E.Any_str }));
  check_eff "computed prop may be a handler"
    (writes a (E.S_handler { target; event = "*" }))

let test_nested_function_declarations () =
  (* inner is local to outer: calling outer writes g but never a global
     named inner. *)
  let a = analyze_src "function outer() { function inner() { g = 1; } inner(); } outer();" in
  check_eff "inlined nested call writes g" (writes a (E.S_global (E.Lit "g")));
  check_no_eff "inner is not a global" (writes a (E.S_global (E.Lit "inner")))

let test_prefix_concatenation () =
  let a = analyze_src "var el = document.getElementById(\"id_\" + i);" in
  let prefix_read =
    has_eff a (fun e ->
        e.E.kind = E.Read && e.E.loc = E.S_id { doc = 0; id = E.Prefix "id_" })
  in
  check_eff "concatenation yields a prefix pattern" prefix_read;
  Alcotest.(check bool) "prefix matches instance" true
    (E.sstr_matches (E.Prefix "id_") (E.Lit "id_3"));
  Alcotest.(check bool) "prefix rejects others" false
    (E.sstr_matches (E.Prefix "id_") (E.Lit "name_3"))

let test_dynamic_eval_is_top () =
  let a = analyze_src "eval(code);" in
  check_eff "dynamic eval reads top" (reads a E.S_top);
  check_eff "dynamic eval writes top" (writes a E.S_top)

let test_literal_eval_inlined () =
  let a = analyze_src "eval(\"g = 1;\");" in
  check_eff "literal eval is inline code" (writes a (E.S_global (E.Lit "g")));
  check_no_eff "no top effect for literal eval" (writes a E.S_top)

let test_handler_registration_opens_sub () =
  let a = analyze_src "var b = document.getElementById(\"btn\"); b.onclick = function () { n = 1; };" in
  let target = E.T_elem { doc = 0; id = E.Lit "btn" } in
  check_eff "registration writes the handler container"
    (writes a (E.S_handler { target; event = "click" }));
  let sub =
    List.exists
      (fun (k, (body : E.analysis)) ->
        match k with
        | E.K_handler { event = "click"; _ } ->
            List.exists
              (fun e -> e.E.kind = E.Write && e.E.loc = E.S_global (E.Lit "n"))
              body.E.effs
        | _ -> false)
      a.E.subs
  in
  check_eff "handler body is a nested unit writing n" sub

let test_timer_sub_carries_delay () =
  let a = analyze_src "setTimeout(function () { t = 1; }, 50);" in
  let sub =
    List.exists
      (fun (k, _) -> k = E.K_timer { interval = false; delay = Some 50. })
      a.E.subs
  in
  check_eff "timer sub-unit records its delay" sub

let test_xhr_completion_sub () =
  let a =
    analyze_src
      "var x = new XMLHttpRequest(); x.onreadystatechange = function () { r = 1; };"
  in
  let sub =
    List.exists
      (fun (k, (body : E.analysis)) ->
        k = E.K_xhr
        && List.exists
             (fun e -> e.E.kind = E.Write && e.E.loc = E.S_global (E.Lit "r"))
             body.E.effs)
      a.E.subs
  in
  check_eff "XHR completion handler is a nested unit" sub

let test_add_event_listener () =
  let a = analyze_src "document.addEventListener(\"DOMContentLoaded\", function () { d = 1; });" in
  check_eff "listener registration writes the container"
    (writes a (E.S_handler { target = E.T_root 0; event = "DOMContentLoaded" }))

let test_handler_scope_is_local () =
  (* Inline-attribute handler code: var declarations are handler-local,
     bare assignments still hit globals. *)
  let a = analyze_src ~handler:true "var p = 1; q = 2;" in
  check_no_eff "handler var is local" (writes a (E.S_global (E.Lit "p")));
  check_eff "bare assignment is global" (writes a (E.S_global (E.Lit "q")))

let test_conflict_exemptions () =
  let eff kind loc = { E.loc; kind; func_decl = false; call = false; user = false; may_miss = false } in
  let coll = E.S_collection { doc = 0; name = E.Lit "tag:div" } in
  check_no_eff "collection write-write exempt"
    (E.conflicts (eff E.Write coll) (eff E.Write coll));
  check_eff "collection read-write conflicts"
    (E.conflicts (eff E.Read coll) (eff E.Write coll));
  let h = E.S_handler { target = E.T_root 0; event = "load" } in
  check_no_eff "handler container write-write exempt"
    (E.conflicts (eff E.Write h) (eff E.Write h));
  check_no_eff "read-read never conflicts"
    (E.conflicts (eff E.Read coll) (eff E.Read coll))

(* ------------------------------------------------------------------ *)
(* Widening soundness: the recall-oriented widenings (computed member
   names, dynamic eval) must stay on the may-overlap side — a widened
   effect has to conflict with every concrete effect it could denote
   and cover every dynamic cell it could reach. These invariants are
   what the triage pipeline's refutation certificates lean on: a
   certificate is only sound because coverage never under-approximates. *)
(* ------------------------------------------------------------------ *)

let mk_eff kind loc =
  { E.loc; kind; func_decl = false; call = false; user = false; may_miss = false }

let test_computed_member_widening_sound () =
  let a =
    analyze_src "var el = document.getElementById(\"box\"); el[\"tmp_\" + n] = 1;"
  in
  let target = E.T_elem { doc = 0; id = E.Lit "box" } in
  (* The analyzer widens an element member write with a computed key to
     a wildcard prop on that target — never silently narrower. *)
  check_eff "computed member widens to a wildcard prop"
    (writes a (E.S_prop { target; prop = E.Any_str }));
  let w = mk_eff E.Write (E.S_prop { target; prop = E.Any_str }) in
  check_eff "wildcard write conflicts with every prop read on the target"
    (E.conflicts w (mk_eff E.Read (E.S_prop { target; prop = E.Lit "tmp_final" })));
  check_no_eff "widening stays anchored to its target"
    (E.conflicts w
       (mk_eff E.Read
          (E.S_prop
             { target = E.T_elem { doc = 0; id = E.Lit "nav" };
               prop = E.Lit "tmp_final" })));
  (* A prefix-widened sloc (literal head + unknown tail) is the partial
     precision the triage certificates lean on: it must conflict with
     everything sharing the prefix, and nothing else. *)
  let widened = E.S_prop { target; prop = E.Prefix "tmp_" } in
  let pw = mk_eff E.Write widened in
  check_eff "prefix write conflicts with every tmp_* read"
    (E.conflicts pw (mk_eff E.Read (E.S_prop { target; prop = E.Lit "tmp_final" })));
  check_no_eff "prefix write stays precise outside the prefix"
    (E.conflicts pw (mk_eff E.Read (E.S_prop { target; prop = E.Lit "other" })));
  check_eff "prefix covers any concrete tmp_* cell"
    (Compare.loc_covers widened
       (Wr_mem.Location.Js_var { cell = 9; name = "tmp_7" }));
  check_no_eff "prefix does not cover foreign cells"
    (Compare.loc_covers widened
       (Wr_mem.Location.Js_var { cell = 9; name = "other" }))

let test_dynamic_eval_widening_sound () =
  let a = analyze_src "var c = \"adv_mark\"; eval(c + \" = 1;\");" in
  check_eff "non-literal eval widens to top write" (writes a E.S_top);
  check_eff "non-literal eval widens to top read" (reads a E.S_top);
  let w = mk_eff E.Write E.S_top in
  check_eff "top write conflicts with any global read"
    (E.conflicts w (mk_eff E.Read (E.S_global (E.Lit "g"))));
  check_eff "top write conflicts with any id read"
    (E.conflicts w (mk_eff E.Read (E.S_id { doc = 0; id = E.Lit "panel" })));
  check_eff "top covers any variable cell"
    (Compare.loc_covers E.S_top (Wr_mem.Location.Js_var { cell = 1; name = "x" }));
  check_eff "top covers any html cell"
    (Compare.loc_covers E.S_top
       (Wr_mem.Location.Html_elem (Wr_mem.Location.Id { doc = 0; id = "p" })));
  check_eff "top covers any handler cell"
    (Compare.loc_covers E.S_top
       (Wr_mem.Location.Event_handler
          { target = 3; event = "click"; slot = Wr_mem.Location.Container }))

let test_wildcard_sstr_sound () =
  check_eff "Any_str matches every literal"
    (E.sstr_matches E.Any_str (E.Lit "anything"));
  check_eff "Any_str matches every prefix"
    (E.sstr_matches E.Any_str (E.Prefix "tmp_"));
  check_eff "two prefixes overlap when one extends the other"
    (E.sstr_matches (E.Prefix "tmp_") (E.Prefix "tmp_f"));
  check_no_eff "disjoint prefixes cannot overlap"
    (E.sstr_matches (E.Prefix "tmp_") (E.Prefix "adv_"))

let test_classify_mirrors_dynamic () =
  let eff ?(func_decl = false) kind loc =
    { E.loc; kind; func_decl; call = false; user = false; may_miss = false }
  in
  let module R = Wr_detect.Race in
  Alcotest.(check string) "id pair is html" (R.type_name R.Html)
    (R.type_name
       (E.classify
          (eff E.Read (E.S_id { doc = 0; id = E.Lit "a" }))
          (eff E.Write (E.S_id { doc = 0; id = E.Lit "a" }))));
  Alcotest.(check string) "handler pair is dispatch" (R.type_name R.Event_dispatch)
    (R.type_name
       (E.classify
          (eff E.Write (E.S_handler { target = E.T_root 0; event = "load" }))
          (eff E.Read (E.S_handler { target = E.T_root 0; event = "load" }))));
  Alcotest.(check string) "func decl pair is function race" (R.type_name R.Function_race)
    (R.type_name
       (E.classify
          (eff ~func_decl:true E.Write (E.S_global (E.Lit "f")))
          (eff E.Read (E.S_global (E.Lit "f")))));
  Alcotest.(check string) "plain global pair is variable" (R.type_name R.Variable)
    (R.type_name
       (E.classify
          (eff E.Write (E.S_global (E.Lit "x")))
          (eff E.Read (E.S_global (E.Lit "x")))));
  (* A top effect (dynamic eval) takes its class from the other side. *)
  Alcotest.(check string) "top defers to the other side" (R.type_name R.Event_dispatch)
    (R.type_name
       (E.classify (eff E.Write E.S_top)
          (eff E.Read (E.S_handler { target = E.T_unknown; event = "click" }))))

(* ------------------------------------------------------------------ *)
(* MHP over the HB rules                                               *)
(* ------------------------------------------------------------------ *)

let build page = Model.build ~page ~resources:[] ()

let find_units m pred =
  Array.to_list m.Model.units |> List.filter (fun u -> pred u.Model.kind)

let find_unit m pred =
  match find_units m pred with
  | u :: _ -> u
  | [] -> Alcotest.fail "expected unit not found"

let test_sync_scripts_ordered () =
  let m = build "<html><body><script>a = 1;</script><script>a = 2;</script></body></html>" in
  match find_units m (function Model.U_script `Sync -> true | _ -> false) with
  | [ s1; s2 ] ->
      check_eff "first script HB second" (Model.happens_before m s1.Model.uid s2.Model.uid);
      check_no_eff "not MHP" (Model.mhp m s1.Model.uid s2.Model.uid)
  | us -> Alcotest.failf "expected 2 sync scripts, got %d" (List.length us)

let test_async_script_unordered () =
  let m =
    Model.build
      ~page:
        "<html><body><script src=\"a.js\" async></script><script>b = 1;</script></body></html>"
      ~resources:[ ("a.js", "a = 1;") ]
      ()
  in
  let async = find_unit m (function Model.U_script `Async -> true | _ -> false) in
  let sync = find_unit m (function Model.U_script `Sync -> true | _ -> false) in
  check_eff "async MHP with later sync script" (Model.mhp m async.Model.uid sync.Model.uid);
  (* ...but the async script still happens before window load (rule 13). *)
  let load = find_unit m (function Model.U_load -> true | _ -> false) in
  check_eff "async HB load" (Model.happens_before m async.Model.uid load.Model.uid)

let test_defer_runs_before_dcl () =
  let m =
    Model.build
      ~page:
        "<html><body><script src=\"d.js\" defer></script><div id=\"late\"></div></body></html>"
      ~resources:[ ("d.js", "var el = document.getElementById(\"late\");") ]
      ()
  in
  let defer = find_unit m (function Model.U_script `Defer -> true | _ -> false) in
  let dcl = find_unit m (function Model.U_dcl -> true | _ -> false) in
  let late =
    find_unit m (function
      | Model.U_parse { elem_id = Some "late"; _ } -> true
      | _ -> false)
  in
  check_eff "parsing HB defer" (Model.happens_before m late.Model.uid defer.Model.uid);
  check_eff "defer HB DOMContentLoaded" (Model.happens_before m defer.Model.uid dcl.Model.uid)

let test_timer_delay_ordering () =
  (* Rule 17: same-parent timers are ordered by non-decreasing delay. *)
  let m =
    build
      "<html><body><script>setTimeout(function () { a = 1; }, 10); setTimeout(function () { a = 2; }, 20);</script></body></html>"
  in
  let t10 =
    find_unit m (function Model.U_timer { delay = Some 10.; _ } -> true | _ -> false)
  in
  let t20 =
    find_unit m (function Model.U_timer { delay = Some 20.; _ } -> true | _ -> false)
  in
  check_eff "shorter delay HB longer" (Model.happens_before m t10.Model.uid t20.Model.uid);
  check_no_eff "longer not HB shorter" (Model.happens_before m t20.Model.uid t10.Model.uid)

let test_timer_mhp_with_later_parsing () =
  let m =
    build
      "<html><body><script>setTimeout(function () { a = 1; }, 0);</script><div id=\"x\"></div></body></html>"
  in
  let t = find_unit m (function Model.U_timer _ -> true | _ -> false) in
  let d =
    find_unit m (function
      | Model.U_parse { elem_id = Some "x"; _ } -> true
      | _ -> false)
  in
  check_eff "timer MHP with later parsing" (Model.mhp m t.Model.uid d.Model.uid);
  let s = find_unit m (function Model.U_script `Sync -> true | _ -> false) in
  check_eff "registering script HB its timer" (Model.happens_before m s.Model.uid t.Model.uid)

let test_handler_inside_defer_script () =
  (* A timer registered from a defer script inherits the defer unit as its
     predecessor: it cannot run before parsing finishes. *)
  let m =
    Model.build
      ~page:"<html><body><script src=\"d.js\" defer></script><div id=\"x\"></div></body></html>"
      ~resources:[ ("d.js", "setTimeout(function () { a = 1; }, 5);") ]
      ()
  in
  let defer = find_unit m (function Model.U_script `Defer -> true | _ -> false) in
  let t = find_unit m (function Model.U_timer _ -> true | _ -> false) in
  let d =
    find_unit m (function
      | Model.U_parse { elem_id = Some "x"; _ } -> true
      | _ -> false)
  in
  check_eff "defer HB its timer" (Model.happens_before m defer.Model.uid t.Model.uid);
  check_eff "parsing HB the deferred timer" (Model.happens_before m d.Model.uid t.Model.uid)

(* ------------------------------------------------------------------ *)
(* End-to-end prediction and lint                                      *)
(* ------------------------------------------------------------------ *)

let predict page = Predict.predict ~page ~resources:[] ()

let test_predict_html_race () =
  (* fig3 shape: a javascript: link races the parser to #panel. *)
  let r =
    predict
      "<html><body><script>function open_panel() { var p = document.getElementById(\"panel\"); }</script><a id=\"open\" href=\"javascript:open_panel()\">go</a><div id=\"panel\"></div></body></html>"
  in
  let html =
    List.exists
      (fun (p : Predict.prediction) ->
        p.Predict.race_type = Wr_detect.Race.Html
        && p.Predict.loc = E.S_id { doc = 0; id = E.Lit "panel" })
      r.Predict.predictions
  in
  check_eff "html race on #panel predicted" html

let test_predict_no_race_when_ordered () =
  (* Both accesses in the same sync script: ordered, nothing predicted. *)
  let r = predict "<html><body><script>x = 1; var y = x;</script></body></html>" in
  Alcotest.(check int) "no predictions" 0 (List.length r.Predict.predictions)

let test_lint_duplicate_ids () =
  let r =
    predict "<html><body><div id=\"dup\"></div><div id=\"dup\"></div></body></html>"
  in
  let dup =
    List.exists
      (function Predict.Duplicate_id { id = "dup"; count = 2; _ } -> true | _ -> false)
      r.Predict.lint
  in
  check_eff "duplicate id reported" dup

let test_lint_handler_on_missing_id () =
  let r =
    predict
      "<html><body><script>setTimeout(function () { var el = document.getElementById(\"ghost\"); el.onclick = function () {}; }, 10);</script></body></html>"
  in
  let missing =
    List.exists
      (function
        | Predict.Handler_on_missing_id { id = "ghost"; event = "click"; _ } -> true
        | _ -> false)
      r.Predict.lint
  in
  check_eff "handler on absent id reported" missing

let test_lint_write_only_global () =
  let r = predict "<html><body><script>orphan = 1;</script></body></html>" in
  let wo =
    List.exists
      (function Predict.Write_only_global { name = "orphan"; _ } -> true | _ -> false)
      r.Predict.lint
  in
  check_eff "write-only global reported" wo

let suite =
  [
    Alcotest.test_case "effects: global read/write" `Quick test_global_read_write;
    Alcotest.test_case "effects: var decl writes global" `Quick test_var_decl_writes_global;
    Alcotest.test_case "effects: function decl" `Quick test_function_decl_effect;
    Alcotest.test_case "effects: aliased document lookup" `Quick test_aliased_document_lookup;
    Alcotest.test_case "effects: computed member widens" `Quick
      test_computed_member_forces_unknown;
    Alcotest.test_case "effects: nested function declarations" `Quick
      test_nested_function_declarations;
    Alcotest.test_case "effects: prefix concatenation" `Quick test_prefix_concatenation;
    Alcotest.test_case "effects: dynamic eval is top" `Quick test_dynamic_eval_is_top;
    Alcotest.test_case "effects: literal eval inlined" `Quick test_literal_eval_inlined;
    Alcotest.test_case "effects: handler registration sub-unit" `Quick
      test_handler_registration_opens_sub;
    Alcotest.test_case "effects: timer delay recorded" `Quick test_timer_sub_carries_delay;
    Alcotest.test_case "effects: xhr completion sub-unit" `Quick test_xhr_completion_sub;
    Alcotest.test_case "effects: addEventListener" `Quick test_add_event_listener;
    Alcotest.test_case "effects: handler-local scope" `Quick test_handler_scope_is_local;
    Alcotest.test_case "effects: conflict exemptions" `Quick test_conflict_exemptions;
    Alcotest.test_case "widening: computed member sound" `Quick
      test_computed_member_widening_sound;
    Alcotest.test_case "widening: dynamic eval sound" `Quick
      test_dynamic_eval_widening_sound;
    Alcotest.test_case "widening: wildcard strings sound" `Quick
      test_wildcard_sstr_sound;
    Alcotest.test_case "effects: classification" `Quick test_classify_mirrors_dynamic;
    Alcotest.test_case "mhp: sync scripts ordered" `Quick test_sync_scripts_ordered;
    Alcotest.test_case "mhp: async script unordered" `Quick test_async_script_unordered;
    Alcotest.test_case "mhp: defer before DCL" `Quick test_defer_runs_before_dcl;
    Alcotest.test_case "mhp: timer delay ordering" `Quick test_timer_delay_ordering;
    Alcotest.test_case "mhp: timer vs later parsing" `Quick test_timer_mhp_with_later_parsing;
    Alcotest.test_case "mhp: handler inside defer script" `Quick
      test_handler_inside_defer_script;
    Alcotest.test_case "predict: html race" `Quick test_predict_html_race;
    Alcotest.test_case "predict: ordered page clean" `Quick test_predict_no_race_when_ordered;
    Alcotest.test_case "lint: duplicate ids" `Quick test_lint_duplicate_ids;
    Alcotest.test_case "lint: handler on missing id" `Quick test_lint_handler_on_missing_id;
    Alcotest.test_case "lint: write-only global" `Quick test_lint_write_only_global;
  ]
