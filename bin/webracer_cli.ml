(* The WebRacer command-line interface.

   webracer run PAGE.html      analyze one page for races
   webracer batch PAGES...     analyze many pages over a domain pool
   webracer explain PAGE.html  show checkable witnesses for each race
   webracer predict PAGE.html  static race prediction, no execution
   webracer triage PAGE.html   confirm or refute predictions with guided schedules
   webracer corpus             regenerate the paper's evaluation tables
   webracer sitegen NAME DIR   write a synthetic corpus site to disk
   webracer serve              long-lived analysis daemon (socket/TCP)
   webracer call VERB          client for a running serve daemon

   The page-analyzing subcommands all construct [Wr_serve.Request]
   values and go through [Wr_serve.Api], the same decode/dispatch path
   the daemon uses — `run --json` output and a served `analyze` result
   are byte-identical (modulo wall_clock_s). *)

open Cmdliner
module Telemetry = Wr_telemetry.Telemetry
module Log = Wr_support.Log
module Request = Wr_serve.Request
module Api = Wr_serve.Api

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Resources for [run]: every other regular file in the page's directory is
   fetchable under its relative name, so `webracer run dir/page.html` works
   on a directory of page + scripts + frames. *)
let resources_around page_path =
  let dir = Filename.dirname page_path in
  let page_base = Filename.basename page_path in
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.filter (fun f ->
             f <> page_base && not (Sys.is_directory (Filename.concat dir f)))
      |> List.map (fun f -> (f, read_file (Filename.concat dir f)))
  | exception Sys_error _ -> []

(* [--log-out FILE] routes the structured event log to a JSONL file; if
   WEBRACER_LOG did not already pick a level, recording everything is the
   useful default for an explicitly requested log file. *)
let setup_event_log log_out =
  match log_out with
  | None -> ()
  | Some file ->
      Log.open_sink_file file;
      if Log.current_level () = None then Log.set_level (Some Log.Debug)

let log_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "log-out" ] ~docv:"FILE"
        ~doc:"Write the structured pipeline event log as JSONL to $(docv) (level \
              $(b,debug) unless $(b,WEBRACER_LOG) says otherwise).")

(* --- run -------------------------------------------------------------- *)

let detector_conv =
  Arg.enum
    [
      ("last-access", Webracer.Config.Last_access);
      ("full-track", Webracer.Config.Full_track);
    ]

let hb_conv =
  Arg.enum
    [ ("closure", Wr_hb.Graph.Closure); ("dfs", Wr_hb.Graph.Dfs);
      ("chain-vc", Wr_hb.Graph.Chain_vc) ]

let run_cmd =
  let page =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PAGE" ~doc:"HTML page to analyze.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Seed for network latencies and Math.random.")
  in
  let explore =
    Arg.(
      value & flag
      & info [ "no-explore" ] ~doc:"Disable automatic exploration of user events (§5.2.2).")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ] ~doc:"Report unfiltered races instead of applying the §5.3 filters.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the full report as JSON.") in
  let detector =
    Arg.(
      value
      & opt detector_conv Webracer.Config.Last_access
      & info [ "detector" ] ~doc:"Race detector: $(b,last-access) (paper) or $(b,full-track).")
  in
  let hb =
    Arg.(
      value & opt hb_conv Wr_hb.Graph.Closure
      & info [ "hb" ] ~doc:"Happens-before queries: $(b,closure), $(b,chain-vc) or $(b,dfs) (paper).")
  in
  let time_limit =
    Arg.(
      value & opt float 60_000.
      & info [ "time-limit" ] ~doc:"Virtual-time horizon in milliseconds.")
  in
  let dump_hb =
    Arg.(
      value & opt (some string) None
      & info [ "dump-hb" ] ~docv:"FILE"
          ~doc:"Write the happens-before graph as Graphviz DOT, with the first reported                 race's operations highlighted.")
  in
  let dump_trace =
    Arg.(
      value & opt (some string) None
      & info [ "dump-trace" ] ~docv:"FILE"
          ~doc:"Record the execution trace (operations, edges, accesses) as JSON for \
                offline analysis with $(b,webracer offline).")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write a Chrome trace_event JSON profile of the run (open in \
                chrome://tracing or Perfetto).")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:"Collect telemetry during the run and print a metrics summary (also \
                embedded under $(b,telemetry) with $(b,--json)).")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ]
          ~doc:"Disable the per-operation access-dedup front-end, feeding the detector \
                every raw access (slower; race results are identical either way).")
  in
  let action page seed no_explore raw json detector hb time_limit dump_hb dump_trace
      trace_out metrics no_dedup log_out =
    setup_event_log log_out;
    let tm = if trace_out <> None || metrics then Telemetry.create () else Telemetry.disabled in
    let params =
      Request.analyze_params ~page:(read_file page) ~resources:(resources_around page)
        ~seed ~explore:(not no_explore) ~detector ~hb ~time_limit
        ~dedup:(not no_dedup) ()
    in
    let report = Api.analyze ~trace:(dump_trace <> None) ~telemetry:tm params in
    (match trace_out with
    | Some file -> write_file file (Wr_support.Json.to_string (Telemetry.to_chrome_trace tm))
    | None -> ());
    (match dump_trace, report.Webracer.trace with
    | Some file, Some trace -> Wr_detect.Trace.save trace file
    | _ -> ());
    (match dump_hb with
    | Some file ->
        let highlight =
          match report.Webracer.races with
          | r :: _ ->
              [ r.Wr_detect.Race.first.Wr_mem.Access.op;
                r.Wr_detect.Race.second.Wr_mem.Access.op ]
          | [] -> []
        in
        write_file file (Wr_hb.Graph.to_dot ~highlight report.Webracer.hb_graph)
    | None -> ());
    if json then print_endline (Wr_support.Json.to_string (Webracer.report_to_json report))
    else begin
      let races = if raw then report.Webracer.races else report.Webracer.filtered in
      Format.printf "%a@.@." Webracer.pp_report report;
      if races = [] then
        print_endline (if raw then "No races detected." else "No races after filtering.")
      else begin
        Format.printf "%s races%s:@.@."
          (string_of_int (List.length races))
          (if raw then " (unfiltered)" else " (after §5.3 filters)");
        List.iteri
          (fun i r ->
            Format.printf "%2d. %a%s@.@." (i + 1) Wr_detect.Race.pp r
              (if Wr_detect.Race.heuristic_harmful r then "  [likely harmful]" else ""))
          races
      end;
      if report.Webracer.crashes <> [] then begin
        Format.printf "Script crashes hidden by the browser:@.";
        List.iter
          (fun (c : Wr_browser.Browser.crash) ->
            Format.printf "  - %s (in %s)@." c.Wr_browser.Browser.message
              c.Wr_browser.Browser.context)
          report.Webracer.crashes
      end;
      if metrics then
        print_endline (Wr_support.Json.to_string (Telemetry.metrics_json tm))
    end;
    Log.close_sink ();
    (* CI-gate contract: exit 2 iff a likely-harmful race survives the
       filters, so `webracer run` can guard a pipeline (README: exit codes). *)
    if List.exists Wr_detect.Race.heuristic_harmful report.Webracer.filtered then exit 2
  in
  let doc = "Analyze a web page for races (WebRacer, PLDI 2012)." in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const action $ page $ seed $ explore $ raw $ json $ detector $ hb $ time_limit
      $ dump_hb $ dump_trace $ trace_out $ metrics $ no_dedup $ log_out_arg)

(* --- batch -------------------------------------------------------------- *)

let batch_cmd =
  let pages =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"PAGES" ~doc:"HTML pages to analyze (each with its directory's \
                                    files as fetchable resources).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Analyze up to $(docv) pages concurrently on an OCaml-domain worker pool \
                (0 = one per hardware thread). Results are aggregated in input order, so \
                the report is identical whatever $(docv) is.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Seed for network latencies and Math.random.")
  in
  let no_explore =
    Arg.(
      value & flag
      & info [ "no-explore" ] ~doc:"Disable automatic exploration of user events (§5.2.2).")
  in
  let no_dedup =
    Arg.(
      value & flag
      & info [ "no-dedup" ] ~doc:"Disable the per-operation access-dedup front-end.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the aggregated report as JSON.") in
  let action pages jobs seed no_explore no_dedup json log_out =
    setup_event_log log_out;
    let jobs = if jobs = 0 then Wr_support.Pool.default_jobs () else max 1 jobs in
    let started = Wr_support.Clock.now () in
    let cfgs =
      List.map
        (fun page ->
          Webracer.config ~page:(read_file page) ~resources:(resources_around page) ~seed
            ~explore:(not no_explore) ~dedup:(not no_dedup) ())
        pages
    in
    let reports = Webracer.analyze_batch ~jobs cfgs in
    let rows = List.combine pages reports in
    if json then
      print_endline
        (Wr_support.Json.to_string
           (Wr_support.Json.List
              (List.map
                 (fun (page, r) ->
                   Wr_support.Json.Obj
                     [
                       ("page", Wr_support.Json.String page);
                       ("report", Webracer.report_to_json r);
                     ])
                 rows)))
    else begin
      let harmful r =
        List.length (List.filter Wr_detect.Race.heuristic_harmful r.Webracer.filtered)
      in
      Wr_support.Table.print
        ~header:[ "page"; "races"; "filtered"; "harmful"; "ops"; "accesses" ]
        (List.map
           (fun (page, r) ->
             [
               page;
               string_of_int (List.length r.Webracer.races);
               string_of_int (List.length r.Webracer.filtered);
               string_of_int (harmful r);
               string_of_int r.Webracer.ops;
               string_of_int r.Webracer.accesses;
             ])
           rows);
      let sum f = List.fold_left (fun acc (_, r) -> acc + f r) 0 rows in
      Printf.printf "\n%d pages: %d races, %d after filters, %d likely harmful\n"
        (List.length rows)
        (sum (fun r -> List.length r.Webracer.races))
        (sum (fun r -> List.length r.Webracer.filtered))
        (sum harmful);
      Printf.printf "wall clock: %.3f s (%d jobs)\n" (Wr_support.Clock.now () -. started) jobs
    end;
    Log.close_sink ();
    (* Same CI-gate contract as `run`: exit 2 iff any page keeps a
       likely-harmful race after filtering. *)
    if
      List.exists
        (fun (_, r) ->
          List.exists Wr_detect.Race.heuristic_harmful r.Webracer.filtered)
        rows
    then exit 2
  in
  let doc =
    "Analyze many pages concurrently on an OCaml 5 domain pool and aggregate the \
     reports deterministically (input order, independent of completion order)."
  in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(const action $ pages $ jobs $ seed $ no_explore $ no_dedup $ json $ log_out_arg)

(* --- explain ------------------------------------------------------------ *)

let explain_cmd =
  let page =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"PAGE" ~doc:"HTML page whose races should be explained.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Seed for network latencies and Math.random.")
  in
  let no_explore =
    Arg.(
      value & flag
      & info [ "no-explore" ] ~doc:"Disable automatic exploration of user events (§5.2.2).")
  in
  let race_n =
    Arg.(
      value & opt (some int) None
      & info [ "race" ] ~docv:"N" ~doc:"Explain only the $(docv)-th reported race (1-based).")
  in
  let dot_out =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:"Export the witness evidence as a Graphviz DOT $(i,subgraph): only the \
                provenance, frontier and ancestor operations, racing ops outlined red, \
                provenance paths bold red.")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the selected witnesses as JSON to $(docv).")
  in
  let action page seed no_explore race_n dot_out json_out log_out =
    setup_event_log log_out;
    let params =
      Request.analyze_params ~page:(read_file page) ~resources:(resources_around page)
        ~seed ~explore:(not no_explore) ()
    in
    let report = Api.analyze params in
    let g = report.Webracer.hb_graph in
    let races = report.Webracer.races in
    let witnesses =
      match Api.select_witnesses report ~race:race_n with
      | Ok selection -> selection
      | Error msg ->
          Printf.eprintf "explain: %s\n" msg;
          exit 1
    in
    Printf.printf "races: %d raw, %d after filters\n\n" (List.length races)
      (List.length report.Webracer.filtered);
    if races = [] then print_endline "No races detected; nothing to explain."
    else
      List.iter
        (fun (i, race, w) ->
          let suppression =
            match List.find_opt (fun (_, r) -> r == race) report.Webracer.suppressed with
            | Some (filter, _) -> Printf.sprintf " [suppressed by %s filter]" filter
            | None -> ""
          in
          Format.printf "%2d.%s %a@.@." i suppression (Wr_explain.pp g) w)
        witnesses;
    (match dot_out with
    | Some file ->
        write_file file (Wr_explain.dot_many g (List.map (fun (_, _, w) -> w) witnesses));
        Printf.printf "witness subgraph written to %s\n" file
    | None -> ());
    (match json_out with
    | Some file ->
        write_file file (Wr_support.Json.to_string (Api.explain_json report witnesses));
        Printf.printf "witnesses written to %s\n" file
    | None -> ());
    Log.close_sink ();
    if List.exists (fun (_, _, w) -> not (Wr_explain.verify g w)) witnesses then begin
      prerr_endline "explain: internal error: a witness failed its own certificate";
      exit 3
    end
  in
  let doc =
    "Explain each detected race with a checkable witness: the racing operations' \
     provenance chains, their nearest common happens-before ancestor, and the no-path \
     frontier certifying that neither access happens-before the other."
  in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(
      const action $ page $ seed $ no_explore $ race_n $ dot_out $ json_out $ log_out_arg)

(* --- predict ----------------------------------------------------------- *)

let predict_cmd =
  let page =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"PAGE" ~doc:"HTML page to predict races for (omit with $(b,--corpus)).")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the prediction document as JSON.") in
  let lint =
    Arg.(
      value & flag
      & info [ "lint" ]
          ~doc:"Report only the static lint findings (write-only globals, handlers on \
                missing ids, duplicate ids) as JSON; always exits 0.")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:"Also run the dynamic detector and label predictions confirmed or \
                unconfirmed, and dynamic races predicted or missed.")
  in
  let corpus =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:"Validate over the synthetic corpus instead of one page: predict and \
                $(b,--compare) every site, aggregate recall/precision.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Seed for the dynamic comparison run.")
  in
  let limit =
    Arg.(
      value & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"(corpus) only the first $(docv) sites.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"(corpus) validate up to $(docv) sites concurrently (0 = one per \
                hardware thread); per-site seeds are position-fixed.")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ] ~doc:"Collect telemetry and print a metrics summary.")
  in
  let action page json lint compare corpus seed limit jobs metrics log_out =
    setup_event_log log_out;
    if corpus then begin
      let jobs = if jobs = 0 then Wr_support.Pool.default_jobs () else max 1 jobs in
      let outcomes = Wr_sitegen.Eval.predict_corpus ~seed ?limit ~jobs () in
      print_string (Wr_sitegen.Eval.render_predict outcomes);
      let missed =
        List.fold_left
          (fun acc (o : Wr_sitegen.Eval.predict_outcome) ->
            acc + List.length o.Wr_sitegen.Eval.comparison.Wr_static.Compare.missed)
          0 outcomes
      in
      Log.close_sink ();
      (* CI-gate contract: a dynamically detected race the static side
         missed is a soundness regression. *)
      if missed > 0 then exit 2
    end
    else begin
      let page =
        match page with
        | Some p -> p
        | None ->
            prerr_endline "predict: PAGE argument required (or use --corpus)";
            exit 1
      in
      let tm = if metrics then Telemetry.create () else Telemetry.disabled in
      let target =
        Request.analyze_params ~page:(read_file page)
          ~resources:(resources_around page) ~seed ()
      in
      let params = { Request.target; compare; lint } in
      let doc = Api.predict_json ~telemetry:tm params in
      if json || lint then
        print_endline (Wr_support.Json.to_string doc)
      else begin
        let member name =
          match doc with
          | Wr_support.Json.Obj fields -> List.assoc_opt name fields
          | _ -> None
        in
        let geti name j =
          match Wr_support.Json.member name j with
          | Wr_support.Json.Int n -> n
          | _ -> 0
        in
        (match (member "units", member "mhp_pairs", member "summary") with
        | Some units, Some mhp, Some summary ->
            Printf.printf "units: %d  mhp pairs: %d\n"
              (match units with Wr_support.Json.Int n -> n | _ -> 0)
              (match mhp with Wr_support.Json.Int n -> n | _ -> 0);
            Printf.printf
              "predicted races: %d (html %d, function %d, variable %d, dispatch %d)\n"
              (geti "total" summary) (geti "html" summary) (geti "function" summary)
              (geti "variable" summary) (geti "dispatch" summary)
        | _ -> ());
        (match member "predictions" with
        | Some (Wr_support.Json.List preds) ->
            List.iteri
              (fun i p ->
                let s name = Wr_support.Json.(to_str (member name p)) in
                let unit_label side =
                  Wr_support.Json.(to_str (member "label" (member side p)))
                in
                Printf.printf "%2d. %s race on %s\n      %s (%s)\n      %s (%s)\n"
                  (i + 1) (s "type") (s "location") (unit_label "first")
                  (s "first_kind") (unit_label "second") (s "second_kind"))
              preds
        | _ -> ());
        (match member "compare" with
        | Some c ->
            Printf.printf
              "compare: dynamic races %d, matched %d; predictions %d, confirmed %d\n"
              (geti "dynamic_races" c) (geti "matched_dynamic" c) (geti "predicted" c)
              (geti "confirmed" c);
            (match Wr_support.Json.member "missed" c with
            | Wr_support.Json.List [] -> ()
            | Wr_support.Json.List missed ->
                Printf.printf "missed dynamic races:\n";
                List.iter
                  (fun m ->
                    Printf.printf "  - %s race on %s\n"
                      Wr_support.Json.(to_str (member "type" m))
                      Wr_support.Json.(to_str (member "location" m)))
                  missed
            | _ -> ())
        | None -> ());
        if metrics then
          print_endline (Wr_support.Json.to_string (Telemetry.metrics_json tm))
      end;
      Log.close_sink ()
    end
  in
  let doc =
    "Predict races ahead of time from static effect analysis and a parse-derived \
     may-happen-in-parallel relation (no execution)."
  in
  Cmd.v
    (Cmd.info "predict" ~doc)
    Term.(
      const action $ page $ json $ lint $ compare $ corpus $ seed $ limit $ jobs
      $ metrics $ log_out_arg)

(* --- triage ------------------------------------------------------------ *)

let triage_cmd =
  let page =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"PAGE" ~doc:"HTML page to triage (omit with $(b,--corpus)).")
  in
  let corpus =
    Arg.(
      value & flag
      & info [ "corpus" ]
          ~doc:"Triage the synthetic corpus plus the adversarial pack instead of \
                one page; exits 2 if any site surfaces a dynamic race outside its \
                prediction set.")
  in
  let budget =
    Arg.(
      value
      & opt int Wr_static.Triage.default_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"Schedule budget per page, baseline included; predictions left over \
                when it runs out stay $(b,unconfirmed).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the triage report as JSON (schema v2, stable field order; \
                single-page mode only).")
  in
  let blind =
    Arg.(
      value & flag
      & info [ "blind" ]
          ~doc:"Also report how many schedules blind seed enumeration needs to \
                confirm everything the guided search confirmed (capped at 64).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Base seed for the schedules.")
  in
  let limit =
    Arg.(
      value & opt (some int) None
      & info [ "limit" ] ~docv:"N"
          ~doc:"(corpus) only the first $(docv) sites (the adversarial pack \
                always rides along).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Schedule (or, with $(b,--corpus), site) parallelism (0 = one per \
                hardware thread); the reports are identical whatever $(docv) is.")
  in
  let action page corpus budget json blind seed limit jobs log_out =
    setup_event_log log_out;
    let jobs = if jobs = 0 then Wr_support.Pool.default_jobs () else max 1 jobs in
    if corpus then begin
      let outcomes = Wr_sitegen.Eval.triage_corpus ~seed ?limit ~jobs ~budget () in
      print_string (Wr_sitegen.Eval.render_triage outcomes);
      Log.close_sink ();
      (* CI-gate contract: a dynamic race the prediction set does not
         cover is a soundness regression. *)
      if not (Wr_sitegen.Eval.triage_sound outcomes) then exit 2
    end
    else begin
      let page =
        match page with
        | Some p -> p
        | None ->
            prerr_endline "triage: PAGE argument required (or use --corpus)";
            exit 1
      in
      let page_html = read_file page and resources = resources_around page in
      let t =
        Wr_static.Triage.run ~seed ~jobs ~budget ~page:page_html ~resources ()
      in
      if json then
        print_endline (Wr_support.Json.to_string (Wr_static.Triage.to_json t))
      else begin
        print_string (Wr_static.Triage.render t);
        if blind then begin
          let b =
            Wr_static.Triage.blind_equivalent ~jobs ~seed ~page:page_html
              ~resources t
          in
          Printf.printf "blind equivalent: %d schedules%s\n"
            b.Wr_static.Triage.blind_schedules
            (if b.Wr_static.Triage.blind_matched then ""
             else " (cap hit before matching)")
        end
      end;
      Log.close_sink ();
      if not (Wr_static.Triage.sound t) then exit 2
    end
  in
  let doc =
    "Triage static race predictions with guided dynamic schedules: derive the \
     delay-channel directives that could realize each prediction from the MHP \
     model, run only those schedules, and classify every prediction confirmed, \
     refuted (with a certificate) or unconfirmed (exit 2 if a dynamic race \
     escapes the prediction set)."
  in
  Cmd.v
    (Cmd.info "triage" ~doc)
    Term.(
      const action $ page $ corpus $ budget $ json $ blind $ seed $ limit $ jobs
      $ log_out_arg)

(* --- corpus ------------------------------------------------------------ *)

let corpus_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Corpus analysis seed.") in
  let limit =
    Arg.(
      value & opt (some int) None
      & info [ "limit" ] ~doc:"Only analyze the first $(docv) sites." ~docv:"N")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Analyze up to $(docv) sites concurrently (0 = one per hardware thread); \
                per-site seeds are position-fixed so the tables do not depend on $(docv).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:"Also print the fleet profile: per-domain queue-wait / run / idle / GC \
                breakdown, lock contention, and the cross-domain telemetry phase \
                table — the figures behind any parallel speedup (or its absence).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"With $(b,--profile), emit the fleet profile as one JSON object \
                (pool, GC, regex-cache and telemetry sections — the same fields \
                as the rendered tables) instead of text.")
  in
  let gc_trace =
    Arg.(
      value & flag
      & info [ "gc-trace" ]
          ~doc:"Observe the runtime's GC through Runtime_events even without \
                $(b,--profile) (implied by it): per-domain pause histograms, and \
                GC slices on each domain's track in $(b,--trace-out) output.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the run's Chrome trace_event JSON: analysis spans per domain, \
                interleaved with GC slices when the probe is on.")
  in
  let action seed limit jobs profile json gc_trace trace_out =
    let jobs = if jobs = 0 then Wr_support.Pool.default_jobs () else max 1 jobs in
    let observing = profile || gc_trace || trace_out <> None in
    let tm = if observing then Telemetry.create () else Telemetry.disabled in
    (* Start before the pool exists so every fleet domain announces its
       ring; the probe reads GC pauses from [Runtime_events], not
       [Gc.quick_stat] deltas. *)
    let probe =
      if profile || gc_trace then
        Some (Wr_telemetry.Runtime_probe.start ~telemetry:tm ())
      else None
    in
    let outcomes, pool_stats =
      Wr_sitegen.Eval.run_corpus_stats ~seed ?limit ~jobs ~telemetry:tm ()
    in
    Option.iter Wr_telemetry.Runtime_probe.stop probe;
    let n_ok =
      List.length (List.filter Wr_sitegen.Eval.fidelity outcomes)
    in
    let regex_hits, regex_misses, regex_contended =
      Wr_js.Builtins.regex_cache_stats ()
    in
    if json then begin
      let fields =
        [
          ("sites", Wr_support.Json.Int (List.length outcomes));
          ("fidelity_ok", Wr_support.Json.Int n_ok);
          ("jobs", Wr_support.Json.Int jobs);
          ("fleet", Wr_support.Pool.stats_json pool_stats);
          ( "regex_cache",
            Wr_support.Json.Obj
              [
                ("hits", Wr_support.Json.Int regex_hits);
                ("misses", Wr_support.Json.Int regex_misses);
                ("lock_contended", Wr_support.Json.Int regex_contended);
              ] );
        ]
        @ (match probe with
          | Some p -> [ ("gc", Wr_telemetry.Runtime_probe.stats_json p) ]
          | None -> [])
        @
        if Telemetry.enabled tm then
          [ ("telemetry", Telemetry.metrics_json tm) ]
        else []
      in
      print_endline (Wr_support.Json.to_string (Wr_support.Json.Obj fields))
    end
    else begin
      print_endline "Table 1 analogue (raw races per type across sites):\n";
      print_string (Wr_sitegen.Eval.render_table1 outcomes);
      print_endline "\nTable 2 analogue (filtered races per site, harmful in parens):\n";
      print_string (Wr_sitegen.Eval.render_table2 outcomes);
      Printf.printf "\nGround-truth fidelity: %d/%d sites\n" n_ok
        (List.length outcomes);
      if profile then begin
        Printf.printf "\nFleet profile (%d jobs):\n\n" jobs;
        print_string (Wr_support.Pool.render_stats pool_stats);
        Printf.printf "\nregex cache: %d hits, %d misses, %d lock contentions\n"
          regex_hits regex_misses regex_contended;
        (match probe with
        | Some p ->
            Printf.printf "\nGC (runtime events, per domain):\n\n";
            print_string (Wr_telemetry.Runtime_probe.render_stats p)
        | None -> ());
        Printf.printf "\nTelemetry phases (%d recording domains, %d spans):\n\n"
          (Telemetry.domains tm) (Telemetry.n_spans tm);
        print_string (Telemetry.phase_table tm)
      end
      else
        match probe with
        | Some p ->
            Printf.printf "\nGC (runtime events, per domain):\n\n";
            print_string (Wr_telemetry.Runtime_probe.render_stats p)
        | None -> ()
    end;
    match trace_out with
    | Some file ->
        write_file file (Wr_support.Json.to_string (Telemetry.to_chrome_trace tm));
        if not json then Printf.printf "\ntrace written to %s\n" file
    | None -> ()
  in
  let doc = "Regenerate the paper's evaluation tables over the synthetic corpus." in
  Cmd.v (Cmd.info "corpus" ~doc)
    Term.(
      const action $ seed $ limit $ jobs $ profile $ json $ gc_trace $ trace_out)

(* --- offline ------------------------------------------------------------ *)

let offline_cmd =
  let trace_file =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Trace recorded with $(b,webracer run --dump-trace).")
  in
  let detector =
    Arg.(
      value
      & opt detector_conv Webracer.Config.Last_access
      & info [ "detector" ] ~doc:"Detector to replay the trace through.")
  in
  let hb =
    Arg.(
      value & opt hb_conv Wr_hb.Graph.Closure
      & info [ "hb" ] ~doc:"Happens-before strategy for the replayed graph.")
  in
  let atomicity =
    Arg.(
      value & flag
      & info [ "atomicity" ]
          ~doc:"Also run the atomicity-violation checker (unserializable interleavings).")
  in
  let action trace_file detector hb atomicity =
    let trace = Wr_detect.Trace.load trace_file in
    let mk g =
      match detector with
      | Webracer.Config.Last_access -> Wr_detect.Last_access.create g
      | Webracer.Config.Full_track -> Wr_detect.Full_track.create g
      | Webracer.Config.No_detector -> Wr_detect.Detector.null
    in
    let races = Wr_detect.Trace.replay ~strategy:hb trace ~detector:mk in
    Printf.printf "trace: %d ops, %d edges, %d accesses\n"
      (List.length trace.Wr_detect.Trace.ops)
      (List.length trace.Wr_detect.Trace.edges)
      (List.length trace.Wr_detect.Trace.accesses);
    Printf.printf "races: %d\n\n" (List.length races);
    List.iteri
      (fun i r -> Format.printf "%2d. %a@.@." (i + 1) Wr_detect.Race.pp r)
      races;
    if atomicity then begin
      let violations = Wr_detect.Atomicity.check_trace trace in
      Printf.printf "atomicity violations: %d\n\n" (List.length violations);
      List.iter
        (fun v -> Format.printf "%a@.@." Wr_detect.Atomicity.pp_violation v)
        violations
    end
  in
  let doc = "Replay a recorded trace through a detector (and optionally the atomicity checker)." in
  Cmd.v (Cmd.info "offline" ~doc) Term.(const action $ trace_file $ detector $ hb $ atomicity)

(* --- replay ------------------------------------------------------------ *)

let replay_cmd =
  let page =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"PAGE" ~doc:"HTML page whose races should be made to manifest.")
  in
  let schedules =
    Arg.(
      value & opt int 25
      & info [ "schedules" ] ~doc:"How many alternative schedules to try.")
  in
  let parse_delay =
    Arg.(
      value & opt float 2.
      & info [ "parse-delay" ]
          ~doc:"Virtual ms per parsed element, letting resource arrivals interleave with \
                parsing.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Try up to $(docv) schedules concurrently (0 = one per hardware \
                thread); the verdict stays seed-ordered whatever $(docv) is.")
  in
  let action page schedules parse_delay jobs =
    let jobs = if jobs = 0 then Wr_support.Pool.default_jobs () else max 1 jobs in
    let params =
      {
        Request.target =
          Request.analyze_params ~page:(read_file page)
            ~resources:(resources_around page) ~explore:false ();
        schedules;
        parse_delay;
        jobs;
      }
    in
    let verdict = Api.replay params in
    Format.printf "%a@." Webracer.Replay.pp_verdict verdict;
    if Webracer.Replay.manifests verdict then exit 2
  in
  let doc =
    "Re-run a page under alternative schedules until a detected race manifests as a crash \
     or divergent output (exit 2 when it does)."
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const action $ page $ schedules $ parse_delay $ jobs)

(* --- profile ------------------------------------------------------------ *)

let profile_cmd =
  let page =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"PAGE" ~doc:"HTML page to profile.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Seed for network latencies and Math.random.")
  in
  let no_explore =
    Arg.(
      value & flag
      & info [ "no-explore" ] ~doc:"Disable automatic exploration of user events (§5.2.2).")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Also write the Chrome trace_event JSON profile (open in chrome://tracing \
                or Perfetto).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the profile as one JSON object (telemetry phases, counters, \
                histograms, race counts, GC when $(b,--gc-trace)) instead of text.")
  in
  let gc_trace =
    Arg.(
      value & flag
      & info [ "gc-trace" ]
          ~doc:"Also observe the runtime's GC through Runtime_events: pause \
                histogram plus GC slices in $(b,--trace-out) output.")
  in
  let action page seed no_explore trace_out json gc_trace =
    let tm = Telemetry.create () in
    let probe =
      if gc_trace then Some (Wr_telemetry.Runtime_probe.start ~telemetry:tm ())
      else None
    in
    let cfg =
      Webracer.config ~page:(read_file page) ~resources:(resources_around page) ~seed
        ~explore:(not no_explore) ~telemetry:tm ()
    in
    let report = Webracer.analyze cfg in
    Option.iter Wr_telemetry.Runtime_probe.stop probe;
    if json then begin
      let fields =
        [
          ("telemetry", Telemetry.metrics_json tm);
          ( "races",
            Wr_support.Json.Obj
              [
                ("raw", Wr_support.Json.Int (List.length report.Webracer.races));
                ( "filtered",
                  Wr_support.Json.Int (List.length report.Webracer.filtered) );
              ] );
        ]
        @
        match probe with
        | Some p -> [ ("gc", Wr_telemetry.Runtime_probe.stats_json p) ]
        | None -> []
      in
      print_endline (Wr_support.Json.to_string (Wr_support.Json.Obj fields));
      match trace_out with
      | Some file ->
          write_file file (Wr_support.Json.to_string (Telemetry.to_chrome_trace tm))
      | None -> ()
    end
    else begin
    print_string (Telemetry.phase_table tm);
    Printf.printf "\nspans: %d  domains: %d  races: %d raw, %d after filters\n"
      (Telemetry.n_spans tm) (Telemetry.domains tm)
      (List.length report.Webracer.races)
      (List.length report.Webracer.filtered);
    (match Telemetry.counters tm with
    | [] -> ()
    | counters ->
        print_newline ();
        print_endline "counters:";
        List.iter (fun (k, v) -> Printf.printf "  %-30s %d\n" k v) counters);
    (match Telemetry.histograms tm with
    | [] -> ()
    | hs ->
        print_newline ();
        print_endline "histograms:                       count      mean       p50       p95       max";
        List.iter
          (fun (name, h) ->
            Printf.printf "  %-30s %6d %9.3f %9.3f %9.3f %9.3f\n" name
              h.Telemetry.count h.Telemetry.mean h.Telemetry.p50
              h.Telemetry.p95 h.Telemetry.max)
          hs);
    (match probe with
    | Some p ->
        Printf.printf "\nGC (runtime events):\n\n";
        print_string (Wr_telemetry.Runtime_probe.render_stats p)
    | None -> ());
    match trace_out with
    | Some file ->
        write_file file (Wr_support.Json.to_string (Telemetry.to_chrome_trace tm));
        Printf.printf "\ntrace written to %s\n" file
    | None -> ()
    end
  in
  let doc =
    "Analyze a page with telemetry enabled and print the per-phase wall-clock breakdown \
     (parse, js-exec, event-dispatch, scheduler, network, detector)."
  in
  Cmd.v
    (Cmd.info "profile" ~doc)
    Term.(const action $ page $ seed $ no_explore $ trace_out $ json $ gc_trace)

(* --- sitegen ------------------------------------------------------------ *)

let sitegen_cmd =
  let site_name =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"SITE" ~doc:"Profile name, e.g. Ford or MetLife.")
  in
  let out_dir =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"DIR" ~doc:"Output directory (created if missing).")
  in
  let action name dir =
    match
      List.find_opt
        (fun p -> p.Wr_sitegen.Profile.name = name)
        (Wr_sitegen.Profile.corpus ())
    with
    | None ->
        prerr_endline ("unknown site: " ^ name);
        exit 1
    | Some profile ->
        let site = Wr_sitegen.Gen.generate profile in
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        write_file (Filename.concat dir "index.html") site.Wr_sitegen.Gen.page;
        List.iter
          (fun (url, body) -> write_file (Filename.concat dir url) body)
        site.Wr_sitegen.Gen.resources;
        Printf.printf "wrote %s/index.html and %d resources\n" dir
          (List.length site.Wr_sitegen.Gen.resources)
  in
  let doc = "Write a synthetic corpus site to disk (then: webracer run DIR/index.html)." in
  Cmd.v (Cmd.info "sitegen" ~doc) Term.(const action $ site_name $ out_dir)

(* --- serve / call ------------------------------------------------------- *)

let address_term =
  let socket =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Listen on (or connect to) a Unix socket.")
  in
  let port =
    Arg.(
      value & opt (some int) None
      & info [ "port" ] ~docv:"N"
          ~doc:"Listen on (or connect to) TCP 127.0.0.1:$(docv) instead of a Unix \
                socket.")
  in
  let combine socket port =
    match (socket, port) with
    | Some path, None -> `Ok (Wr_serve.Daemon.Unix_socket path)
    | None, Some p -> `Ok (Wr_serve.Daemon.Tcp p)
    | None, None -> `Error (true, "one of --socket PATH or --port N is required")
    | Some _, Some _ -> `Error (true, "--socket and --port are mutually exclusive")
  in
  Term.(ret (const combine $ socket $ port))

let address_string = function
  | Wr_serve.Daemon.Unix_socket p -> "unix:" ^ p
  | Wr_serve.Daemon.Tcp p -> Printf.sprintf "tcp:127.0.0.1:%d" p

let serve_cmd =
  let jobs =
    Arg.(
      value & opt int 4
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains analyzing requests (0 = one per hardware thread); the \
                accept loop runs besides them.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Event-loop shards, each on its own domain with its own accept path \
                (TCP uses $(b,SO_REUSEPORT) when available; Unix sockets hand \
                accepted connections off round-robin). 1 keeps the classic single \
                loop; like $(b,-j), past the hardware thread count shards only \
                contend.")
  in
  let queue =
    Arg.(
      value & opt int 128
      & info [ "queue" ] ~docv:"N"
          ~doc:"Bounded admission queue: requests arriving while $(docv) jobs are in \
                flight get an $(b,overload) error instead of piling up.")
  in
  let cache =
    Arg.(
      value & opt int 64
      & info [ "cache" ] ~docv:"N"
          ~doc:"LRU result-cache entries keyed by content hash of (page, resources, \
                config); 0 disables caching.")
  in
  let wall_limit =
    Arg.(
      value & opt float 60.
      & info [ "wall-limit" ] ~docv:"SECONDS"
          ~doc:"Per-request wall-clock budget; an overdue request is answered with a \
                $(b,timeout) error (0 = unlimited).")
  in
  let max_vtime =
    Arg.(
      value & opt float 600_000.
      & info [ "max-time-limit" ] ~docv:"MS"
          ~doc:"Clamp on the virtual-time horizon a request may ask for.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"On shutdown, write the daemon's Chrome trace_event JSON profile — \
                one named thread row per worker domain, spans tagged with request \
                trace ids — to $(docv).")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"On shutdown, write the final $(b,metrics) document (per-stage \
                latency histograms, queue high-water, cache hit ratio, Prometheus \
                text) to $(docv).")
  in
  let postmortem_dir =
    Arg.(
      value & opt (some string) None
      & info [ "postmortem-dir" ] ~docv:"DIR"
          ~doc:"Arm the flight recorder: request milestones and log events \
                accumulate in per-domain ring buffers, dumped to $(docv) as \
                $(b,postmortem-<n>-<reason>.jsonl) (+ a mini Chrome trace) on a \
                worker crash, a blown request deadline, or SIGUSR2.")
  in
  let gc_trace =
    Arg.(
      value & flag
      & info [ "gc-trace" ]
          ~doc:"Observe the runtime's GC through Runtime_events for the daemon's \
                lifetime: per-domain pause histograms in $(b,watch) snapshots, GC \
                slices in $(b,--trace-out) output.")
  in
  let action address jobs shards queue cache wall_limit max_vtime trace_out
      metrics_out postmortem_dir gc_trace log_out =
    setup_event_log log_out;
    let jobs = if jobs = 0 then Wr_support.Pool.default_jobs () else max 1 jobs in
    let cfg =
      {
        Wr_serve.Daemon.address;
        jobs;
        shards = max 1 shards;
        queue_cap = max 1 queue;
        cache_cap = max 0 cache;
        wall_limit;
        max_time_limit = max_vtime;
        postmortem_dir;
      }
    in
    let stopped = Atomic.make false in
    let request_stop = Sys.Signal_handle (fun _ -> Atomic.set stopped true) in
    Sys.set_signal Sys.sigint request_stop;
    Sys.set_signal Sys.sigterm request_stop;
    let dump_requested = Atomic.make false in
    Sys.set_signal Sys.sigusr2
      (Sys.Signal_handle (fun _ -> Atomic.set dump_requested true));
    let on_ready addr =
      Printf.eprintf
        "webracer serve: listening on %s (jobs %d, shards %d, queue %d, cache %d)\n%!"
        (address_string addr) jobs cfg.Wr_serve.Daemon.shards
        cfg.Wr_serve.Daemon.queue_cap cfg.Wr_serve.Daemon.cache_cap
    in
    let tm = Telemetry.create () in
    (* Before [Daemon.run] creates the pool, so every worker domain
       announces its GC event ring to the probe. *)
    let probe =
      if gc_trace then Some (Wr_telemetry.Runtime_probe.start ~telemetry:tm ())
      else None
    in
    let on_stop metrics =
      (match metrics_out with
      | Some file ->
          write_file file (Wr_support.Json.to_string metrics);
          Printf.eprintf "webracer serve: metrics written to %s\n%!" file
      | None -> ());
      match trace_out with
      | Some file ->
          write_file file (Wr_support.Json.to_string (Telemetry.to_chrome_trace tm));
          Printf.eprintf "webracer serve: trace written to %s\n%!" file
      | None -> ()
    in
    let final =
      Wr_serve.Daemon.run
        ~stop:(fun () -> Atomic.get stopped)
        ~dump:(fun () -> Atomic.exchange dump_requested false)
        ~on_ready ~on_stop ~telemetry:tm cfg
    in
    Option.iter Wr_telemetry.Runtime_probe.stop probe;
    Printf.eprintf "webracer serve: drained and stopped\n%s\n%!"
      (Wr_support.Json.to_string final);
    Log.close_sink ()
  in
  let doc =
    "Run the long-lived analysis daemon: newline-delimited JSON requests \
     ($(b,ping), $(b,stats), $(b,metrics), $(b,watch), $(b,analyze), \
     $(b,explain), $(b,predict), $(b,triage), $(b,replay)) over a Unix socket \
     or TCP, dispatched to a \
     domain worker pool behind a bounded queue with an LRU result cache. \
     SIGINT/SIGTERM drain in-flight work before exit; SIGUSR2 dumps a \
     postmortem when $(b,--postmortem-dir) is set."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const action $ address_term $ jobs $ shards $ queue $ cache $ wall_limit
      $ max_vtime $ trace_out $ metrics_out $ postmortem_dir $ gc_trace
      $ log_out_arg)

let call_cmd =
  let verb =
    let verb_conv =
      Arg.enum
        [ ("ping", `Ping); ("stats", `Stats); ("metrics", `Metrics);
          ("watch", `Watch); ("analyze", `Analyze); ("explain", `Explain);
          ("predict", `Predict); ("triage", `Triage); ("replay", `Replay);
          ("raw", `Raw) ]
    in
    Arg.(
      required & pos 0 (some verb_conv) None
      & info [] ~docv:"VERB"
          ~doc:"One of $(b,ping), $(b,stats), $(b,metrics), $(b,watch), \
                $(b,analyze), $(b,explain), $(b,predict), $(b,triage), \
                $(b,replay), or $(b,raw) (send stdin lines verbatim).")
  in
  let page =
    Arg.(
      value & pos 1 (some file) None
      & info [] ~docv:"PAGE" ~doc:"HTML page (analyze/explain/predict/triage/replay).")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Pipeline $(docv) copies of the request (ids 1..$(docv)) over one \
                connection; responses print in arrival order.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Seed for network latencies and Math.random.")
  in
  let no_explore =
    Arg.(value & flag & info [ "no-explore" ] ~doc:"Disable automatic exploration (§5.2.2).")
  in
  let no_dedup =
    Arg.(value & flag & info [ "no-dedup" ] ~doc:"Disable the access-dedup front-end.")
  in
  let detector =
    Arg.(
      value
      & opt detector_conv Webracer.Config.Last_access
      & info [ "detector" ] ~doc:"Race detector: $(b,last-access) or $(b,full-track).")
  in
  let hb =
    Arg.(
      value & opt hb_conv Wr_hb.Graph.Closure
      & info [ "hb" ] ~doc:"Happens-before queries: $(b,closure), $(b,chain-vc) or $(b,dfs).")
  in
  let time_limit =
    Arg.(
      value & opt float 60_000.
      & info [ "time-limit" ] ~doc:"Virtual-time horizon in milliseconds.")
  in
  let race_n =
    Arg.(
      value & opt (some int) None
      & info [ "race" ] ~docv:"N" ~doc:"(explain) only the $(docv)-th race, 1-based.")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ] ~doc:"(predict) also run the dynamic detector and score recall.")
  in
  let lint =
    Arg.(value & flag & info [ "lint" ] ~doc:"(predict) answer with lint findings only.")
  in
  let schedules =
    Arg.(
      value & opt int 25
      & info [ "schedules" ] ~doc:"(replay) alternative schedules to try.")
  in
  let parse_delay =
    Arg.(
      value & opt float 2.
      & info [ "parse-delay" ] ~doc:"(replay) virtual ms per parsed element.")
  in
  let budget =
    Arg.(
      value
      & opt int Wr_static.Triage.default_budget
      & info [ "budget" ] ~docv:"N" ~doc:"(triage) schedule budget per page.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"(replay/triage) server-side schedule parallelism.")
  in
  let watch_interval =
    Arg.(
      value & opt float 1.
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"(watch) seconds between snapshots.")
  in
  let watch_count =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"N" ~doc:"(watch) snapshots to request.")
  in
  let connect_timeout =
    Arg.(
      value & opt float 10.
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"Keep retrying the connection this long (covers a daemon still \
                starting up).")
  in
  let http =
    Arg.(
      value & flag
      & info [ "http" ]
          ~doc:"Speak the daemon's HTTP/1.1 surface instead of the raw line \
                protocol (same connection retry logic; responses are always \
                schema v2). Not available for $(b,watch) and $(b,raw).")
  in
  let schema =
    Arg.(
      value & opt int 1
      & info [ "schema" ] ~docv:"V"
          ~doc:"Wire schema generation to request (1 or 2). v2 responses carry \
                the answering shard and HTTP-parity error objects; v1 is the \
                byte-stable default.")
  in
  let trace_id =
    Arg.(
      value & opt (some string) None
      & info [ "trace-id" ] ~docv:"ID"
          ~doc:"Tag the request(s) with this trace id; the daemon echoes it on the \
                response and stamps it on its logs and profiling spans.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ]
          ~doc:"Print each response's trace id on stderr (minting a client-side \
                trace id when $(b,--trace-id) is not given).")
  in
  let action verb page address repeat seed no_explore no_dedup detector hb time_limit
      race_n compare lint schedules parse_delay budget jobs watch_interval
      watch_count connect_timeout http schema trace_id verbose =
    if not (Wr_support.Schema.is_supported schema) then begin
      Printf.eprintf "call: unsupported --schema %d (this client speaks %s)\n"
        schema (Wr_support.Schema.supported_names ());
      exit 1
    end;
    if http && (verb = `Watch || verb = `Raw) then begin
      prerr_endline "call: --http does not support the watch and raw verbs";
      exit 1
    end;
    let client =
      try Wr_serve.Client.connect ~retry_for:connect_timeout address
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "call: cannot connect to %s: %s\n" (address_string address)
          (Unix.error_message e);
        exit 3
    in
    let target () =
      match page with
      | Some p ->
          Request.analyze_params ~page:(read_file p) ~resources:(resources_around p)
            ~seed ~explore:(not no_explore) ~detector ~hb ~time_limit
            ~dedup:(not no_dedup) ()
      | None ->
          prerr_endline "call: this verb needs a PAGE argument";
          exit 1
    in
    let print_and_check n_expected =
      let all_ok = ref true in
      for _ = 1 to n_expected do
        match Wr_serve.Client.recv_line client with
        | None ->
            prerr_endline "call: connection closed before all responses arrived";
            exit 3
        | Some line ->
            print_endline line;
            (match Wr_serve.Response.of_line line with
            | Ok r ->
                if not (Wr_serve.Response.is_ok r) then all_ok := false;
                if verbose then
                  Printf.eprintf "call: id=%s trace=%s\n%!"
                    (Wr_support.Json.to_string (Wr_serve.Response.id r))
                    (Option.value ~default:"-" (Wr_serve.Response.trace r))
            | Error _ -> all_ok := false)
      done;
      !all_ok
    in
    let ok =
      match verb with
      | `Raw ->
          let sent = ref 0 in
          In_channel.fold_lines
            (fun () line ->
              Wr_serve.Client.send_line client line;
              if String.trim line <> "" then incr sent)
            () In_channel.stdin;
          print_and_check !sent
      | `Watch ->
          (* One request, [count] streamed responses on this connection. *)
          let count = max 1 watch_count in
          Wr_serve.Client.send client
            (Request.make ~schema ?trace:trace_id ~id:(Wr_support.Json.Int 1)
               (Request.watch ~interval_s:watch_interval ~count ()));
          print_and_check count
      | ( `Ping | `Stats | `Metrics | `Analyze | `Explain | `Predict | `Triage
        | `Replay ) as v ->
          let verb_value =
            (* The typed builders validate like the daemon's decoder, so a
               bad flag combination fails here instead of on the wire. *)
            try
              match v with
              | `Ping -> Request.Ping
              | `Stats -> Request.Stats
              | `Metrics -> Request.Metrics
              | `Analyze -> Request.analyze (target ())
              | `Explain -> Request.explain ?race:race_n (target ())
              | `Predict -> Request.predict ~compare ~lint (target ())
              | `Triage -> Request.triage ~budget ~jobs:(max 1 jobs) (target ())
              | `Replay ->
                  Request.replay ~schedules ~parse_delay ~jobs:(max 1 jobs)
                    (target ())
            with Invalid_argument msg ->
              Printf.eprintf "call: %s\n" msg;
              exit 1
          in
          let repeat = max 1 repeat in
          (* [--verbose] without [--trace-id] mints a client-side id so the
             echoed trace is still printable. *)
          let trace_for i =
            match trace_id with
            | Some tr -> Some tr
            | None -> if verbose then Some (Printf.sprintf "c-%d" i) else None
          in
          if http then begin
            let path =
              match Request.http_path verb_value with
              | Some p -> p
              | None ->
                  prerr_endline "call: this verb has no HTTP endpoint";
                  exit 1
            in
            let meth = Request.http_method verb_value in
            let body =
              match Request.http_body verb_value with
              | Some j -> Wr_support.Json.to_string j
              | None -> ""
            in
            let all_ok = ref true in
            for i = 1 to repeat do
              let headers =
                match trace_for i with
                | Some tr -> [ ("x-webracer-trace", tr) ]
                | None -> []
              in
              match
                Wr_serve.Client.http_request client ~meth ~path ~headers ~body ()
              with
              | Error msg ->
                  Printf.eprintf "call: %s\n" msg;
                  exit 3
              | Ok (status, resp_body) ->
                  print_endline resp_body;
                  if status <> 200 then all_ok := false;
                  if verbose then Printf.eprintf "call: http=%d\n%!" status
            done;
            !all_ok
          end
          else begin
            for i = 1 to repeat do
              Wr_serve.Client.send client
                (Request.make ~schema ?trace:(trace_for i)
                   ~id:(Wr_support.Json.Int i) verb_value)
            done;
            print_and_check repeat
          end
    in
    Wr_serve.Client.close client;
    if not ok then exit 1
  in
  let doc =
    "Send requests to a running $(b,webracer serve) daemon and print the raw \
     response lines (exit 1 if any response is an error, 3 if the daemon is \
     unreachable)."
  in
  Cmd.v
    (Cmd.info "call" ~doc)
    Term.(
      const action $ verb $ page $ address_term $ repeat $ seed $ no_explore $ no_dedup
      $ detector $ hb $ time_limit $ race_n $ compare $ lint $ schedules $ parse_delay
      $ budget $ jobs $ watch_interval $ watch_count $ connect_timeout $ http $ schema
      $ trace_id $ verbose)

(* --- bench-serve -------------------------------------------------------- *)

let bench_serve_cmd =
  let conns =
    Arg.(
      value & opt int 4
      & info [ "conns" ] ~docv:"N"
          ~doc:"Concurrent connections, one client thread each, released from a \
                barrier simultaneously once all are connected.")
  in
  let pipeline =
    Arg.(
      value & opt int 8
      & info [ "pipeline" ] ~docv:"N"
          ~doc:"Outstanding requests per connection (raw surface; the HTTP surface \
                is sequential round trips).")
  in
  let duration =
    Arg.(
      value & opt float 2.
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Sustained-load window, measured from the barrier release.")
  in
  let verb =
    let bench_verb_conv = Arg.enum [ ("ping", `Ping); ("analyze", `Analyze) ] in
    Arg.(
      value & opt bench_verb_conv `Ping
      & info [ "verb" ] ~docv:"VERB"
          ~doc:"Request to blast: $(b,ping) or $(b,analyze) (needs PAGE; identical \
                requests hit the daemon's result cache after the first).")
  in
  let page =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"PAGE" ~doc:"HTML page for $(b,--verb analyze).")
  in
  let http =
    Arg.(
      value & flag
      & info [ "http" ]
          ~doc:"Blast the HTTP/1.1 surface instead of the raw line protocol.")
  in
  let schema =
    Arg.(
      value & opt int 1
      & info [ "schema" ] ~docv:"V"
          ~doc:"Wire schema generation for raw requests (1 or 2).")
  in
  let json_out =
    Arg.(
      value & opt (some string) None
      & info [ "json-out" ] ~docv:"FILE"
          ~doc:"Write the result document (throughput, latency percentiles, \
                response-class distribution) to $(docv).")
  in
  let action address conns pipeline duration verb page http schema json_out =
    let module L = Wr_serve.Loadgen in
    let module H = Wr_support.Stats.Histo in
    if not (Wr_support.Schema.is_supported schema) then begin
      Printf.eprintf "bench-serve: unsupported --schema %d (this client speaks %s)\n"
        schema (Wr_support.Schema.supported_names ());
      exit 1
    end;
    let rverb =
      match verb with
      | `Ping -> Request.Ping
      | `Analyze -> (
          match page with
          | Some p ->
              Request.analyze
                (Request.analyze_params ~page:(read_file p)
                   ~resources:(resources_around p) ())
          | None ->
              prerr_endline "bench-serve: --verb analyze needs a PAGE argument";
              exit 1)
    in
    let cfg =
      {
        L.address;
        conns = max 1 conns;
        pipeline = max 1 pipeline;
        duration = Float.max 0.05 duration;
        verb = rverb;
        surface = (if http then L.Http else L.Raw);
        schema;
      }
    in
    let r = L.run cfg in
    Printf.printf "bench-serve: %d conns x pipeline %d, %.2f s, %s %s\n"
      r.L.conns_run r.L.pipeline_run r.L.duration_s
      (if http then "http" else "raw")
      (Request.verb_name rverb);
    Printf.printf "sent %d  received %d  throughput %.1f req/s\n" r.L.sent
      r.L.received r.L.throughput_rps;
    Printf.printf "latency p50 %.3f ms  p99 %.3f ms  p999 %.3f ms\n"
      (1000. *. H.percentile r.L.latency 50.)
      (1000. *. H.percentile r.L.latency 99.)
      (1000. *. H.percentile r.L.latency 99.9);
    Printf.printf "classes: %s\n"
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) r.L.classes));
    match json_out with
    | Some file ->
        write_file file (Wr_support.Json.to_string (L.to_json r));
        Printf.eprintf "bench-serve: result written to %s\n%!" file
    | None -> ()
  in
  let doc =
    "Generate sustained concurrent load against a running $(b,webracer serve) \
     daemon — barrier-synchronized burst clients on either surface — and report \
     throughput, p50/p99/p999 round-trip latency and the response-class \
     distribution (the interesting part under deliberate overload)."
  in
  Cmd.v
    (Cmd.info "bench-serve" ~doc)
    Term.(
      const action $ address_term $ conns $ pipeline $ duration $ verb $ page
      $ http $ schema $ json_out)

(* --- top ---------------------------------------------------------------- *)

(* Tiny JSON accessors for the watch snapshots; a malformed snapshot
   reads as zeros rather than crashing the display. *)
let jfield name = function
  | Wr_support.Json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let jnum ?(default = 0.) j name =
  match jfield name j with
  | Some (Wr_support.Json.Float f) -> f
  | Some (Wr_support.Json.Int i) -> float_of_int i
  | _ -> default

let jint j name = int_of_float (jnum j name)

let jlist j name =
  match jfield name j with Some (Wr_support.Json.List l) -> l | _ -> []

let top_cmd =
  let interval =
    Arg.(
      value & opt float 1.
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between refreshes (daemon-side tick).")
  in
  let count =
    Arg.(
      value & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:"Render $(docv) frames then exit (default: stream until Ctrl-C).")
  in
  let connect_timeout =
    Arg.(
      value & opt float 10.
      & info [ "connect-timeout" ] ~docv:"SECONDS"
          ~doc:"Keep retrying the connection this long.")
  in
  (* One frame: rates come from the delta against the previous snapshot,
     so the first frame shows only gauges. *)
  let render address prev snap =
    let b = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
    let ts = jnum snap "ts" in
    let dt = match prev with None -> 0. | Some p -> ts -. jnum p "ts" in
    let rate field =
      match prev with
      | Some p when dt > 0. -> (jnum snap field -. jnum p field) /. dt
      | _ -> 0.
    in
    let queue = Option.value ~default:Wr_support.Json.Null (jfield "queue" snap) in
    let cache = Option.value ~default:Wr_support.Json.Null (jfield "cache" snap) in
    add "webracer top — %s — up %.0f s — frame %d\n" (address_string address)
      (jnum snap "uptime_s") (jint snap "seq");
    add
      "req/s %.1f   in-flight %d/%d (hwm %d)   cache %.0f%% (%d/%d entries %d)   \
       analyses %d   timeouts %d   shed %d\n\n"
      (rate "requests_total") (jint queue "depth") (jint queue "cap")
      (jint queue "high_water")
      (100. *. jnum cache "hit_ratio")
      (jint cache "hits")
      (jint cache "hits" + jint cache "misses")
      (jint cache "entries") (jint snap "analyses_run") (jint snap "timeouts")
      (jint snap "shed");
    (match jfield "latency" snap with
    | Some (Wr_support.Json.Obj stages) ->
        add "stage     count   p50(ms)   p99(ms)   max(ms)\n";
        List.iter
          (fun (stage, h) ->
            add "%-8s %6d %9.2f %9.2f %9.2f\n" stage (jint h "count")
              (1e3 *. jnum h "p50") (1e3 *. jnum h "p99") (1e3 *. jnum h "max"))
          stages
    | _ -> ());
    (* Per-domain rows: fleet slots joined with GC rows on the OCaml
       domain id. Utilisation and GC share are deltas over this frame's
       window — what each domain did since the last refresh. *)
    let fleet = Option.value ~default:Wr_support.Json.Null (jfield "fleet" snap) in
    let gc_rows j =
      match jfield "gc" j with Some gc -> jlist gc "domains" | None -> []
    in
    let find_dom rows dom =
      List.find_opt (fun r -> jint r "dom" = dom) rows
    in
    let prev_fleet =
      match prev with
      | Some p -> Option.value ~default:Wr_support.Json.Null (jfield "fleet" p)
      | None -> Wr_support.Json.Null
    in
    (match jlist fleet "per_domain" with
    | [] -> ()
    | rows ->
        add "\ndomain      dom   tasks   util%%     gc%%   gc-p99(ms)\n";
        List.iter
          (fun row ->
            let worker = jint row "worker" in
            let dom = jint row "dom" in
            let prev_row =
              List.find_opt
                (fun r -> jint r "worker" = worker)
                (jlist prev_fleet "per_domain")
            in
            let drun =
              match prev_row with
              | Some p when dt > 0. -> (jnum row "run_s" -. jnum p "run_s") /. dt
              | _ -> 0.
            in
            let gc_now = find_dom (gc_rows snap) dom in
            let gc_prev =
              match prev with Some p -> find_dom (gc_rows p) dom | None -> None
            in
            let dgc =
              match (gc_now, gc_prev) with
              | Some g, Some gp when dt > 0. ->
                  (jnum g "gc_s" -. jnum gp "gc_s") /. dt
              | _ -> 0.
            in
            let gc_p99 =
              match gc_now with
              | Some g -> (
                  match jfield "pause_ms" g with
                  | Some h -> jnum h "p99"
                  | None -> 0.)
              | None -> 0.
            in
            add "%-10s %4d %7d %6.0f%% %6.0f%% %12.2f\n"
              (if worker = 0 then "submitter" else Printf.sprintf "worker-%d" worker)
              dom (jint row "tasks") (100. *. drun) (100. *. dgc) gc_p99)
          rows);
    Buffer.contents b
  in
  let action address interval count connect_timeout =
    let client =
      try Wr_serve.Client.connect ~retry_for:connect_timeout address
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "top: cannot connect to %s: %s\n" (address_string address)
          (Unix.error_message e);
        exit 3
    in
    (* Ctrl-C ends the display, not the daemon: the connection drops and
       the daemon reaps the watch subscription on its side. *)
    Sys.set_signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           print_newline ();
           exit 0));
    let live = Unix.isatty Unix.stdout in
    Wr_serve.Client.send client
      (Request.make ~id:(Wr_support.Json.Int 1)
         (Request.watch ~interval_s:(Float.max 0.05 interval) ?count ()));
    let rec loop prev frames =
      if count = Some frames then ()
      else
        match Wr_serve.Client.recv client with
        | Error _ when count = None -> ()  (* daemon went away; plain exit *)
        | Error msg ->
            Printf.eprintf "top: %s\n" msg;
            exit 3
        | Ok (Wr_serve.Response.Error { message; _ }) ->
            Printf.eprintf "top: %s\n" message;
            exit 1
        | Ok (Wr_serve.Response.Ok { result; _ }) ->
            if live then print_string "\027[H\027[2J"
            else if frames > 0 then print_newline ();
            print_string (render address prev result);
            flush stdout;
            loop (Some result) (frames + 1)
    in
    loop None 0;
    Wr_serve.Client.close client
  in
  let doc =
    "Live view of a running $(b,webracer serve) daemon: req/s, queue depth, \
     per-stage latency, cache hit ratio, per-domain utilisation and GC share \
     (streamed via the $(b,watch) verb; refreshes in place on a terminal, exits \
     cleanly on Ctrl-C)."
  in
  Cmd.v
    (Cmd.info "top" ~doc)
    Term.(const action $ address_term $ interval $ count $ connect_timeout)

let () =
  let doc = "dynamic race detection for (simulated) web applications" in
  let info = Cmd.info "webracer" ~version:"1.0.0" ~doc in
    exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; batch_cmd; explain_cmd; predict_cmd; triage_cmd; corpus_cmd;
            sitegen_cmd; bench_serve_cmd;
            replay_cmd; offline_cmd; profile_cmd; serve_cmd; call_cmd; top_cmd ]))
